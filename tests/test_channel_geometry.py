"""Unit tests for rays, reflectors, and environments."""

import numpy as np
import pytest

from repro.channel import (
    Environment,
    Ray,
    ReflectorPanel,
    anechoic_chamber,
    conference_room,
    lab_environment,
)


class TestRay:
    def test_los_ray_from_points(self):
        ray = Ray.from_points(np.zeros(3), np.array([3.0, 0.0, 0.0]))
        assert ray.is_los
        assert ray.path_length_m == pytest.approx(3.0)
        assert ray.departure_direction() == (pytest.approx(0.0), pytest.approx(0.0))
        assert ray.arrival_direction()[0] == pytest.approx(180.0)

    def test_bounced_ray_longer_than_los(self):
        via = np.array([1.5, 2.0, 0.0])
        ray = Ray.from_points(np.zeros(3), np.array([3.0, 0.0, 0.0]), via, 8.0)
        assert not ray.is_los
        assert ray.extra_loss_db == 8.0
        assert ray.path_length_m > 3.0
        # Departure points toward the bounce point.
        assert ray.departure_azimuth_deg == pytest.approx(np.rad2deg(np.arctan2(2.0, 1.5)))

    def test_validation(self):
        with pytest.raises(ValueError):
            Ray(0, 0, 0, 0, path_length_m=0.0)
        with pytest.raises(ValueError):
            Ray(0, 0, 0, 0, path_length_m=1.0, extra_loss_db=-1.0)


class TestReflectorPanel:
    @pytest.fixture
    def panel(self):
        return ReflectorPanel(
            center_m=np.array([1.5, 2.0, 0.0]),
            normal=np.array([0.0, -1.0, 0.0]),
            width_m=3.0,
            height_m=1.0,
        )

    def test_mirror_point(self, panel):
        mirrored = panel.mirror_point(np.array([0.0, 0.0, 0.0]))
        np.testing.assert_allclose(mirrored, [0.0, 4.0, 0.0], atol=1e-12)

    def test_specular_bounce_midpoint(self, panel):
        bounce = panel.bounce_point(np.zeros(3), np.array([3.0, 0.0, 0.0]))
        assert bounce is not None
        np.testing.assert_allclose(bounce, [1.5, 2.0, 0.0], atol=1e-9)

    def test_bounce_angle_equality(self, panel):
        tx = np.zeros(3)
        rx = np.array([3.0, 0.0, 0.0])
        bounce = panel.bounce_point(tx, rx)
        incoming = bounce - tx
        outgoing = rx - bounce
        # Angle of incidence equals angle of reflection w.r.t. normal.
        cos_in = abs(incoming @ panel.normal) / np.linalg.norm(incoming)
        cos_out = abs(outgoing @ panel.normal) / np.linalg.norm(outgoing)
        assert cos_in == pytest.approx(cos_out, abs=1e-9)

    def test_no_bounce_outside_finite_panel(self):
        small = ReflectorPanel(
            center_m=np.array([1.5, 2.0, 0.0]),
            normal=np.array([0.0, -1.0, 0.0]),
            width_m=0.1,
            height_m=0.1,
        )
        # Offset geometry: the specular point misses the small panel.
        assert small.bounce_point(np.array([-2.0, 0.0, 0.0]), np.array([3.0, 0.0, 0.0])) is None

    def test_no_bounce_when_straddling(self, panel):
        behind = np.array([0.0, 4.5, 0.0])
        assert panel.bounce_point(np.zeros(3), behind) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ReflectorPanel(np.zeros(3), np.zeros(3), 1.0, 1.0)
        with pytest.raises(ValueError):
            ReflectorPanel(np.zeros(3), np.array([1.0, 0, 0]), -1.0, 1.0)


class TestEnvironments:
    def test_chamber_has_single_los_ray(self):
        chamber = anechoic_chamber(3.0)
        rays = chamber.rays()
        assert len(rays) == 1
        assert rays[0].is_los
        assert chamber.distance_m == pytest.approx(3.0)
        assert chamber.shadowing_std_db == 0.0

    def test_lab_has_los_plus_wall(self):
        rays = lab_environment(3.0).rays()
        assert len(rays) == 2
        assert rays[0].is_los and not rays[1].is_los

    def test_conference_room_multipath(self):
        room = conference_room(6.0)
        rays = room.rays()
        assert len(rays) >= 3
        assert sum(ray.is_los for ray in rays) == 1
        assert room.shadowing_std_db > 0

    def test_los_is_always_first_and_shortest(self):
        for environment in (lab_environment(3.0), conference_room(6.0)):
            rays = environment.rays()
            assert rays[0].is_los
            assert rays[0].path_length_m == min(r.path_length_m for r in rays)

    def test_rays_between_arbitrary_endpoints(self):
        room = conference_room(6.0)
        rays = room.rays_between(np.array([0.5, 0.5, 0.0]), np.array([5.0, -0.5, 0.0]))
        assert rays[0].is_los

    def test_reverse_direction_is_reciprocal(self):
        room = conference_room(6.0)
        forward = room.rays()
        backward = room.rays_between(room.rx_position_m, room.tx_position_m)
        assert len(forward) == len(backward)
        lengths_f = sorted(r.path_length_m for r in forward)
        lengths_b = sorted(r.path_length_m for r in backward)
        np.testing.assert_allclose(lengths_f, lengths_b, atol=1e-9)

    def test_rejects_coincident_endpoints(self):
        with pytest.raises(ValueError):
            Environment("bad", np.zeros(3), np.zeros(3))
