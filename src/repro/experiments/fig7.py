"""Figure 7: angular estimation error vs. number of probing sectors.

For the lab (3 m, LOS, azimuth ±60°, tilts up to 30°) and the
conference room (6 m, multipath, azimuth only), the experiment records
full sweeps on a grid of physical directions, then estimates the path
direction from random probe subsets of each sweep and reports the
azimuth and elevation error distributions per probe count.

The trial loop lives in :class:`~repro.runtime.runner.ScenarioRunner`;
this module only declares the scenario (spec builder + executor) and
post-processes the per-trial records into the figure's box statistics.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List, Sequence

import numpy as np

from ..channel.environment import conference_room, lab_environment
from ..geometry.angles import azimuth_difference
from ..runtime.registry import register_scenario
from ..runtime.runner import ScenarioRunner
from ..runtime.spec import PolicySpec, ScenarioSpec
from .common import BoxStats, record_directions

__all__ = [
    "Fig7Config",
    "Fig7Result",
    "run_fig7",
    "fig7_spec",
    "EstimationErrorSeries",
]


@dataclass(frozen=True)
class Fig7Config:
    """Experiment resolution knobs (paper defaults are finer).

    The paper scans ±60° azimuth at 2.25° (lab) / 1.3° (conference) and
    tilts the lab head 0–30° in 2° steps; the defaults below keep the
    same coverage at a coarser pitch so the experiment runs in seconds.
    """

    seed: int = 7
    probe_counts: Sequence[int] = tuple(range(4, 35, 2))
    lab_azimuth_step_deg: float = 7.5
    lab_elevation_step_deg: float = 6.0
    lab_max_elevation_deg: float = 30.0
    conference_azimuth_step_deg: float = 4.0
    n_sweeps: int = 2
    subsamples_per_sweep: int = 2


@dataclass
class EstimationErrorSeries:
    """Error distributions per probe count for one environment."""

    environment_name: str
    probe_counts: List[int] = field(default_factory=list)
    azimuth_stats: List[BoxStats] = field(default_factory=list)
    elevation_stats: List[BoxStats] = field(default_factory=list)

    def azimuth_median(self, n_probes: int) -> float:
        return self.azimuth_stats[self.probe_counts.index(n_probes)].median

    def elevation_median(self, n_probes: int) -> float:
        return self.elevation_stats[self.probe_counts.index(n_probes)].median


@dataclass
class Fig7Result:
    lab: EstimationErrorSeries
    conference: EstimationErrorSeries

    def format_rows(self) -> List[str]:
        rows = ["fig7: angular estimation error (median [p99.5])"]
        for series in (self.lab, self.conference):
            rows.append(f"-- {series.environment_name} --")
            rows.append("probes | az err (deg)      | el err (deg)")
            for index, n_probes in enumerate(series.probe_counts):
                az = series.azimuth_stats[index]
                el = series.elevation_stats[index]
                rows.append(
                    f"{n_probes:6d} | {az.median:5.1f} [{az.whisker_high:5.1f}] | "
                    f"{el.median:5.1f} [{el.whisker_high:5.1f}]"
                )
        return rows


def fig7_spec(config: Fig7Config = Fig7Config()) -> ScenarioSpec:
    """The declarative form of a Figure 7 run."""
    params = {key: value for key, value in asdict(config).items() if key != "seed"}
    return ScenarioSpec(scenario="fig7", seed=config.seed, params=params)


def _config_from_spec(spec: ScenarioSpec) -> Fig7Config:
    return Fig7Config(seed=spec.seed, **spec.params)


def _evaluate_environment(
    runner: ScenarioRunner,
    spec: ScenarioSpec,
    testbed,
    recordings,
    config: Fig7Config,
    rng: np.random.Generator,
    name: str,
) -> EstimationErrorSeries:
    # The runner replays the paper's offline emulation: one probe draw
    # per recording × sweep × subsample in scalar order, one padded
    # batch per recording, estimates bit-identical to the scalar path.
    # Rows that fell back (fewer than two reported probes) carry no
    # estimate — the trials the scalar loop skipped.
    series = EstimationErrorSeries(environment_name=name)
    context = runner.context(testbed)
    tx_ids = testbed.tx_sector_ids
    for n_probes in config.probe_counts:
        policy_spec = PolicySpec("css", {"n_probes": int(n_probes)})
        policy = runner.build_policy(policy_spec, context)
        blocks = runner.plan_trials(
            policy,
            recordings,
            tx_ids,
            rng,
            subsamples_per_sweep=config.subsamples_per_sweep,
        )
        records = runner.execute(
            policy,
            blocks,
            reset="recording",
            policy_spec=policy_spec,
            testbed_spec=spec.testbed,
        )
        azimuth_errors: List[float] = []
        elevation_errors: List[float] = []
        for record in records:
            estimate = record.result.estimate
            if estimate is None:
                continue
            recording = recordings[record.recording_index]
            azimuth_errors.append(
                abs(azimuth_difference(estimate.azimuth_deg, recording.azimuth_deg))
            )
            elevation_errors.append(
                abs(estimate.elevation_deg - recording.elevation_deg)
            )
        series.probe_counts.append(n_probes)
        series.azimuth_stats.append(BoxStats.from_samples(azimuth_errors))
        series.elevation_stats.append(BoxStats.from_samples(elevation_errors))
    return series


@register_scenario("fig7", default_spec=fig7_spec)
def _run_fig7_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> Fig7Result:
    """Figure 7: angular estimation error vs. probe count."""
    config = _config_from_spec(spec)
    testbed = spec.testbed.build()
    rng = np.random.default_rng(config.seed)

    lab_azimuths = np.arange(-60.0, 60.0 + 1e-9, config.lab_azimuth_step_deg)
    lab_elevations = np.arange(
        0.0, config.lab_max_elevation_deg + 1e-9, config.lab_elevation_step_deg
    )
    lab_recordings = record_directions(
        testbed, lab_environment(3.0), lab_azimuths, lab_elevations, config.n_sweeps, rng
    )
    lab_series = _evaluate_environment(
        runner, spec, testbed, lab_recordings, config, rng, "lab"
    )

    conference_azimuths = np.arange(
        -60.0, 60.0 + 1e-9, config.conference_azimuth_step_deg
    )
    conference_recordings = record_directions(
        testbed, conference_room(6.0), conference_azimuths, [0.0], config.n_sweeps, rng
    )
    conference_series = _evaluate_environment(
        runner, spec, testbed, conference_recordings, config, rng, "conference-room"
    )
    return Fig7Result(lab=lab_series, conference=conference_series)


def run_fig7(config: Fig7Config = Fig7Config(), jobs: int = 1) -> Fig7Result:
    """Run the full Figure 7 experiment (both environments)."""
    with ScenarioRunner(jobs=jobs) as runner:
        return runner.run(fig7_spec(config)).result
