"""Vectorized ground-truth SNR computation over many orientations.

Pattern measurement campaigns and the evaluation experiments need the
true SNR of every sector for hundreds of rotation-head poses.  Walking
the frame-level protocol for each pose would repeat identical gain
computations; this module batches them: one antenna-gain evaluation per
(sector, ray) over all poses at once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry.rotation import Orientation
from ..geometry.spherical import direction_vector, vector_to_angles
from ..phased_array.array import PhasedArray
from ..phased_array.codebook import Codebook
from ..phased_array.weights import WeightVector
from .environment import Environment
from .link import LinkBudget
from .pathloss import path_loss_db
from ..phased_array.elements import wavelength_m

__all__ = ["sweep_snr_matrix"]


def sweep_snr_matrix(
    environment: Environment,
    tx_antenna: PhasedArray,
    codebook: Codebook,
    sector_ids: Sequence[int],
    tx_orientations: Sequence[Orientation],
    rx_antenna: PhasedArray,
    rx_weights: WeightVector,
    rx_orientation: Optional[Orientation] = None,
    budget: Optional[LinkBudget] = None,
    shadowing_db: Optional[np.ndarray] = None,
) -> np.ndarray:
    """True sweep SNR for every (orientation, sector) pair.

    The transmitter sits at the environment's TX endpoint (the rotation
    head) and takes each pose in ``tx_orientations``; the receiver is
    fixed at the RX endpoint listening with ``rx_weights``.

    Args:
        shadowing_db: optional per-ray shadowing, shape
            ``(n_orientations, n_rays)`` — one slow-fading draw per pose.

    Returns:
        Array of shape ``(n_orientations, n_sectors)`` in dB.
    """
    if budget is None:
        budget = LinkBudget()
    if rx_orientation is None:
        rx_orientation = Orientation(yaw_deg=180.0)
    rays = environment.rays()
    n_orientations = len(tx_orientations)
    n_rays = len(rays)
    if shadowing_db is None:
        shadowing_db = np.zeros((n_orientations, n_rays))
    shadowing_db = np.asarray(shadowing_db, dtype=float)
    if shadowing_db.shape != (n_orientations, n_rays):
        raise ValueError("shadowing must have shape (n_orientations, n_rays)")

    # Departure directions in the TX device frame: (n_orientations, n_rays).
    departure_world = np.stack(
        [direction_vector(*ray.departure_direction()) for ray in rays]
    )  # (n_rays, 3)
    tx_az = np.empty((n_orientations, n_rays))
    tx_el = np.empty((n_orientations, n_rays))
    for row, orientation in enumerate(tx_orientations):
        device_vectors = orientation.world_to_device(departure_world)
        azimuths, elevations = vector_to_angles(device_vectors)
        tx_az[row] = azimuths
        tx_el[row] = elevations

    # Receive gain and propagation constants are fixed per ray.
    wavelength = wavelength_m(budget.carrier_hz)
    rx_gain_db = np.empty(n_rays)
    fixed_db = np.empty(n_rays)
    phases = np.empty(n_rays)
    for index, ray in enumerate(rays):
        rx_az, rx_el = rx_orientation.world_direction_in_device_frame(
            *ray.arrival_direction()
        )
        rx_gain_db[index] = rx_antenna.gain_db(rx_weights, rx_az, rx_el)
        fixed_db[index] = (
            budget.tx_power_dbm
            + rx_gain_db[index]
            - path_loss_db(ray.path_length_m, budget.carrier_hz)
            - ray.extra_loss_db
        )
        phases[index] = -2.0 * np.pi * ray.path_length_m / wavelength

    snr = np.empty((n_orientations, len(sector_ids)))
    for column, sector_id in enumerate(sector_ids):
        weights = codebook[sector_id].weights
        tx_gain_db = tx_antenna.gain_db(weights, tx_az, tx_el)  # (n_orient, n_rays)
        amplitude_db = tx_gain_db + fixed_db[np.newaxis, :] - shadowing_db
        field = 10.0 ** (amplitude_db / 20.0) * np.exp(1j * phases[np.newaxis, :])
        power = np.maximum(np.abs(field.sum(axis=1)) ** 2, 1e-30)
        snr[:, column] = 10.0 * np.log10(power) - budget.noise_floor_dbm
    return snr
