"""Continuous sampling profiler (DESIGN.md §15).

A timer-signal statistical profiler with three properties the existing
``--profile`` (cProfile) path cannot offer:

* **Low overhead** — a ``SIGPROF`` handler fires every ``interval_s``
  of *consumed CPU time* and folds the interrupted stacks into a
  collapsed-stack counter; nothing is traced per call, so the cost is
  a bounded number of frame walks per second (priced by the perf
  gate ``runner_profile_overhead_pct``, budget <5 % + noise).
* **Thread-safe** — every sample walks ``sys._current_frames()``, so
  executor threads (the service's run lane) are profiled alongside
  the main thread; the counter dict is only mutated from the signal
  handler, which the interpreter serializes on the main thread.
* **Fork-aware** — POSIX interval timers do **not** survive
  ``fork()``, so a pool worker forked from a profiling supervisor
  would silently stop sampling.  An ``os.register_at_fork`` hook
  re-arms the timer in the child with a *fresh* counter; workers then
  ship their aggregates home inside the drained obs payload (the same
  channel as worker trace buffers and metric snapshots) and the
  supervisor folds them in — merge is commutative addition, so the
  jobs=N aggregate is arrival-order independent.

Sample counts are wall-clock facts, not deterministic ones: profiles
never enter metric snapshots, trace events, or anything covered by a
bit-identity pin.  They exist only when profiling was explicitly
requested (``run --profile-sampling``, ``serve --profile``).
"""

from __future__ import annotations

import os
import signal
import sys
import threading
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "StackSampler",
    "active_sampler",
    "start_profiling",
    "stop_profiling",
    "drain_profile",
    "merge_profile",
    "hotspots",
    "write_collapsed",
    "PROFILE_FORMAT",
]

#: Artifact format marker (mirrors the ``repro-trace`` convention).
PROFILE_FORMAT = "repro-profile"

#: Default sampling period, in seconds of consumed CPU time.  200 Hz
#: keeps the handler cost far under the 5 % overhead budget while
#: resolving millisecond-scale stages.
DEFAULT_INTERVAL_S = 0.005

#: Frames below (older than) any of these are the harness, not the
#: workload; stacks are truncated at the first match so profiles stay
#: comparable between CLI runs, pool workers, and service threads.
_ROOT_NAMES = frozenset(
    {"_bootstrap", "_bootstrap_inner", "_worker", "run_forever", "<module>"}
)


def _frame_label(frame) -> str:
    """``module:function`` for one frame, stable across processes."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{code.co_name}"


class StackSampler:
    """Collapsed-stack statistical sampler for one process.

    One instance per process; :func:`start_profiling` manages the
    module singleton and the fork hook.  ``_counts`` maps a collapsed
    stack (``root;...;leaf`` of ``module:function`` labels) to its
    sample count.
    """

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S):
        if not interval_s > 0.0:
            raise ValueError("sampling interval must be positive")
        self.interval_s = float(interval_s)
        self._counts: Dict[str, int] = {}
        self._samples = 0
        self._active = False
        self._previous_handler: Any = None

    # -- sampling ------------------------------------------------------

    def _handle(self, signum, frame) -> None:  # pragma: no cover - timing
        self._sample(frame)

    def _sample(self, signal_frame) -> None:
        """Fold every live thread's stack into the counter."""
        self._samples += 1
        frames = sys._current_frames()
        # The frame passed to the handler is the main thread's *true*
        # interrupted frame; _current_frames sees the handler itself.
        main_id = threading.main_thread().ident
        if main_id is not None and signal_frame is not None:
            frames = dict(frames)
            frames[main_id] = signal_frame
        for frame in frames.values():
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < 128:
                label = _frame_label(frame)
                stack.append(label)
                if frame.f_code.co_name in _ROOT_NAMES:
                    break
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            collapsed = ";".join(reversed(stack))
            self._counts[collapsed] = self._counts.get(collapsed, 0) + 1

    # -- lifecycle -----------------------------------------------------

    @property
    def active(self) -> bool:
        return self._active

    @property
    def samples(self) -> int:
        return self._samples

    def start(self) -> None:
        """Install the handler and arm the CPU-time interval timer."""
        if self._active:
            return
        self._previous_handler = signal.signal(signal.SIGPROF, self._handle)
        signal.setitimer(signal.ITIMER_PROF, self.interval_s, self.interval_s)
        self._active = True

    def stop(self) -> None:
        """Disarm the timer and restore the previous handler."""
        if not self._active:
            return
        signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
        if self._previous_handler is not None:
            signal.signal(signal.SIGPROF, self._previous_handler)
        self._previous_handler = None
        self._active = False

    def rearm_after_fork(self) -> None:
        """Child-side reset: fresh counter, re-armed timer.

        The handler survives fork (it is process state) but the
        interval timer does not; the inherited counts belong to the
        parent and must not be double-shipped.
        """
        self._counts = {}
        self._samples = 0
        self._active = False
        self.start()

    # -- aggregation ---------------------------------------------------

    def drain(self) -> Dict[str, Any]:
        """Hand over the accumulated samples and reset the counter.

        The worker-side twin of ``TraceRecorder.drain`` — the payload
        rides ``info["obs"]["profile"]`` home and merges via
        :func:`merge_profile`.
        """
        counts, self._counts = self._counts, {}
        samples, self._samples = self._samples, 0
        return {"samples": samples, "stacks": counts}

    def merge(self, payload: Optional[Mapping[str, Any]]) -> None:
        """Fold a drained payload in (commutative, order independent)."""
        if not payload:
            return
        self._samples += int(payload.get("samples", 0))
        for stack, count in payload.get("stacks", {}).items():
            self._counts[stack] = self._counts.get(stack, 0) + int(count)

    def snapshot(self) -> Dict[str, Any]:
        """The current aggregate without resetting (sorted, JSON-safe)."""
        return {
            "samples": self._samples,
            "stacks": dict(sorted(self._counts.items())),
        }


# ----------------------------------------------------------------------
# Module singleton + fork hook.
# ----------------------------------------------------------------------

_SAMPLER: Optional[StackSampler] = None
_FORK_HOOK_INSTALLED = False


def _rearm_in_child() -> None:  # pragma: no cover - exercised via pool
    sampler = _SAMPLER
    if sampler is not None and sampler.active:
        sampler.rearm_after_fork()


def active_sampler() -> Optional[StackSampler]:
    """The process's running sampler, if profiling is on."""
    sampler = _SAMPLER
    if sampler is not None and sampler.active:
        return sampler
    return None


def start_profiling(interval_s: float = DEFAULT_INTERVAL_S) -> StackSampler:
    """Start (or return) the process-wide sampler.

    Idempotent: a second call while profiling returns the running
    sampler unchanged — the service and a traced run sharing one
    process share one profile.
    """
    global _SAMPLER, _FORK_HOOK_INSTALLED
    if _SAMPLER is not None and _SAMPLER.active:
        return _SAMPLER
    sampler = StackSampler(interval_s=interval_s)
    if not _FORK_HOOK_INSTALLED:
        os.register_at_fork(after_in_child=_rearm_in_child)
        _FORK_HOOK_INSTALLED = True
    _SAMPLER = sampler
    sampler.start()
    return sampler


def stop_profiling() -> Dict[str, Any]:
    """Stop the process-wide sampler and return its final aggregate."""
    global _SAMPLER
    sampler = _SAMPLER
    if sampler is None:
        return {"samples": 0, "stacks": {}}
    sampler.stop()
    _SAMPLER = None
    return sampler.snapshot()


def drain_profile() -> Optional[Dict[str, Any]]:
    """Drain the running sampler's buffer (worker payload hook).

    Returns ``None`` when profiling is off so obs payloads stay
    byte-identical to their pre-profiler shape in the common case.
    """
    sampler = active_sampler()
    if sampler is None:
        return None
    return sampler.drain()


def merge_profile(payload: Optional[Mapping[str, Any]]) -> None:
    """Fold a shipped worker aggregate into the local sampler."""
    if not payload:
        return
    sampler = active_sampler()
    if sampler is None:
        return
    sampler.merge(payload)


# ----------------------------------------------------------------------
# Reporting + artifact export.
# ----------------------------------------------------------------------


def hotspots(
    profile: Mapping[str, Any], top: int = 10
) -> List[Dict[str, Any]]:
    """Rank functions by self-sample count (leaf-frame attribution).

    Deterministic given a profile: ties break on the function label so
    a rendered table never reorders between invocations.
    """
    self_counts: Dict[str, int] = {}
    total_counts: Dict[str, int] = {}
    for stack, count in profile.get("stacks", {}).items():
        frames = stack.split(";")
        leaf = frames[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + int(count)
        for label in set(frames):
            total_counts[label] = total_counts.get(label, 0) + int(count)
    samples = int(profile.get("samples", 0)) or 1
    ranked = sorted(self_counts.items(), key=lambda item: (-item[1], item[0]))
    rows = []
    for label, count in ranked[: max(0, int(top))]:
        rows.append(
            {
                "function": label,
                "self": count,
                "total": total_counts.get(label, count),
                "self_pct": 100.0 * count / samples,
            }
        )
    return rows


def profile_summary(
    profile: Mapping[str, Any], top: int = 10
) -> Dict[str, Any]:
    """The compact form embedded in manifests (stacks stay external)."""
    return {
        "samples": int(profile.get("samples", 0)),
        "hotspots": hotspots(profile, top=top),
    }


def write_collapsed(
    path, profile: Mapping[str, Any], header: Optional[Mapping[str, Any]] = None
) -> Tuple[int, int]:
    """Write the flamegraph-compatible collapsed-stack artifact.

    Plain ``stack count`` lines (the format ``flamegraph.pl`` and
    speedscope ingest), preceded by ``#``-comment header lines carrying
    the run identity (spec digest, seed) so artifacts stay keyed to
    what produced them.  Returns ``(n_stacks, n_samples)``.
    """
    path = Path(path)
    stacks = profile.get("stacks", {})
    lines = [f"# format: {PROFILE_FORMAT} v1"]
    for key in sorted(header or {}):
        lines.append(f"# {key}: {(header or {})[key]}")
    for stack in sorted(stacks):
        lines.append(f"{stack} {int(stacks[stack])}")
    path.write_text("\n".join(lines) + "\n")
    return len(stacks), int(profile.get("samples", 0))
