"""Beamforming-training timing model (paper §4.1 and Figure 10).

Measured on the Talon AD7200: one SSW frame occupies 18.0 µs on air,
and the initialization/feedback/ACK exchange adds 49.1 µs per mutual
training.  A full mutual sweep of 34 sectors per side therefore takes
``2 · 34 · 18.0 + 49.1 ≈ 1.27 ms``; with 14 probing sectors it drops to
``2 · 14 · 18.0 + 49.1 ≈ 0.55 ms`` — the paper's 2.3× speed-up.
"""

from __future__ import annotations

__all__ = [
    "SSW_FRAME_TIME_US",
    "FEEDBACK_OVERHEAD_US",
    "BEACON_INTERVAL_US",
    "SWEEP_INTERVAL_US",
    "N_FULL_SWEEP_SECTORS",
    "one_sided_sweep_time_us",
    "mutual_training_time_us",
    "multi_round_training_time_us",
    "training_speedup",
]

#: On-air duration of one SSW frame.
SSW_FRAME_TIME_US = 18.0

#: Initialization, feedback and acknowledgment overhead per training.
FEEDBACK_OVERHEAD_US = 49.1

#: Beacon-interval of the AP (IEEE 802.11ad default TBTT).
BEACON_INTERVAL_US = 102_400.0

#: The Talon triggers transmit-sector training about once per second.
SWEEP_INTERVAL_US = 1_000_000.0

#: Number of TX sectors in the stock sweep (IDs 1–31, 61–63).
N_FULL_SWEEP_SECTORS = 34


def one_sided_sweep_time_us(n_probes: int) -> float:
    """Air time of a single station's sweep burst."""
    if n_probes < 1:
        raise ValueError("a sweep needs at least one probe")
    return n_probes * SSW_FRAME_TIME_US


def mutual_training_time_us(n_probes: int) -> float:
    """Total time for mutual TX-sector training with ``n_probes`` each.

    >>> round(mutual_training_time_us(34) / 1000, 2)
    1.27
    >>> round(mutual_training_time_us(14) / 1000, 2)
    0.55
    """
    return 2.0 * one_sided_sweep_time_us(n_probes) + FEEDBACK_OVERHEAD_US


def multi_round_training_time_us(n_probes: int, n_rounds: int = 1) -> float:
    """Mutual training airtime with ``n_rounds`` feedback exchanges.

    Generalizes :func:`mutual_training_time_us` to strategies that need
    several probe/feedback rounds (hierarchical search pays two) and to
    degenerate zero-probe trainings.  ``multi_round_training_time_us(n, 1)
    == mutual_training_time_us(n)`` for any positive ``n``.
    """
    if n_probes < 0:
        raise ValueError("probe count cannot be negative")
    if n_rounds < 1:
        raise ValueError("training needs at least one feedback round")
    return 2.0 * n_probes * SSW_FRAME_TIME_US + n_rounds * FEEDBACK_OVERHEAD_US


def training_speedup(n_probes: int, n_full: int = N_FULL_SWEEP_SECTORS) -> float:
    """Speed-up of a reduced sweep over the full sweep."""
    return mutual_training_time_us(n_full) / mutual_training_time_us(n_probes)
