"""IEEE 802.11ad MAC substrate: frames, schedules, timing, the SLS protocol."""

from .capture import capture_summary, load_capture, save_capture
from .access import ABFTConfig, AssociationOutcome, AssociationSimulator
from .dti import DTISchedule, DTIScheduler, ServicePeriod, StationDemand
from .fields import SSWField
from .frames import (
    FRAME_TYPE_BEACON,
    FRAME_TYPE_SSW,
    FRAME_TYPE_SSW_ACK,
    FRAME_TYPE_SSW_FEEDBACK,
    BeaconFrame,
    Frame,
    SSWAckFrame,
    SSWFeedbackField,
    SSWFeedbackFrame,
    SSWFrame,
    decode_frame,
    format_mac,
    station_mac,
)
from .schedule import (
    BEACON_SCHEDULE,
    SWEEP_SCHEDULE,
    beacon_burst,
    custom_sweep_burst,
    schedule_table_rows,
    sweep_burst,
)
from .station import Station
from .sweep import CapturedFrame, SweepResult, SweepSession, transmit_beacon_burst
from .timing import (
    BEACON_INTERVAL_US,
    FEEDBACK_OVERHEAD_US,
    N_FULL_SWEEP_SECTORS,
    SSW_FRAME_TIME_US,
    SWEEP_INTERVAL_US,
    mutual_training_time_us,
    one_sided_sweep_time_us,
    training_speedup,
)

__all__ = [
    "capture_summary",
    "load_capture",
    "save_capture",
    "ABFTConfig",
    "AssociationOutcome",
    "AssociationSimulator",
    "DTISchedule",
    "DTIScheduler",
    "ServicePeriod",
    "StationDemand",
    "SSWField",
    "FRAME_TYPE_BEACON",
    "FRAME_TYPE_SSW",
    "FRAME_TYPE_SSW_ACK",
    "FRAME_TYPE_SSW_FEEDBACK",
    "BeaconFrame",
    "Frame",
    "SSWAckFrame",
    "SSWFeedbackField",
    "SSWFeedbackFrame",
    "SSWFrame",
    "decode_frame",
    "format_mac",
    "station_mac",
    "BEACON_SCHEDULE",
    "SWEEP_SCHEDULE",
    "beacon_burst",
    "custom_sweep_burst",
    "schedule_table_rows",
    "sweep_burst",
    "Station",
    "CapturedFrame",
    "SweepResult",
    "SweepSession",
    "transmit_beacon_burst",
    "BEACON_INTERVAL_US",
    "FEEDBACK_OVERHEAD_US",
    "N_FULL_SWEEP_SECTORS",
    "SSW_FRAME_TIME_US",
    "SWEEP_INTERVAL_US",
    "mutual_training_time_us",
    "one_sided_sweep_time_us",
    "training_speedup",
]
