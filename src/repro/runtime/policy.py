"""The :class:`SelectionPolicy` protocol — strategies as pluggable data.

Every sector-selection strategy the paper compares (compressive
selection, the exhaustive sweep, hierarchical search, random probing
beams, the oracle) answers the same three questions per training:

1. *What do you want to probe this round?* — ``probes_for_round``
2. *Given those measurements, which sector?* — ``select``
3. *What did the training cost in airtime?* — ``training_time_us``

A policy that additionally implements ``select_batch`` gets the
engine's vectorized fast path (whole recordings per call).  Policies
are constructed from a :class:`~.spec.PolicySpec` through the registry
(:mod:`.registry`), receiving a :class:`PolicyContext` with the shared
testbed and a cache for expensive intermediates (pattern matrices,
selectors) that several policy instances can share.

Determinism contract: the **only** random stream a policy may consume
is the ``rng`` passed to ``probes_for_round`` — and only there.
``select`` / ``select_batch`` must be pure functions of the
measurements and the policy's selection state.  This is what lets the
runner pre-draw all probes in scalar order and then evaluate trials
batched, sharded, or out of process without changing a single result
bit (DESIGN.md §7/§8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.measurements import ProbeMeasurement
from ..core.selector import SelectionResult

__all__ = ["PolicyContext", "SelectionPolicy", "PolicyOutcome"]


@dataclass
class PolicyContext:
    """What a policy factory gets to build from.

    Attributes:
        testbed: the shared simulated hardware
            (:class:`repro.experiments.common.Testbed`).
        cache: a dict policies may use to share expensive intermediates
            (e.g. a ``CompressiveSectorSelector`` keyed by its config
            — selectors sample two full grid matrices on construction,
            and policies differing only in probe count can share one).
    """

    testbed: Any
    cache: Dict[Any, Any] = field(default_factory=dict)


@runtime_checkable
class SelectionPolicy(Protocol):
    """A complete sector-selection strategy.

    Attributes:
        name: registry name, used for timing labels and manifests.
        multi_round: True when later rounds depend on earlier
            measurements (e.g. hierarchical search).  Multi-round
            policies run through the interactive driver; single-round
            ones are eligible for offline planning + batching.
    """

    name: str
    multi_round: bool

    def reset(self) -> None:
        """Forget selection history, as if freshly constructed."""
        ...

    def probes_for_round(
        self, round_index: int, pool: Sequence[int], rng: np.random.Generator
    ) -> Optional[List[int]]:
        """Sector IDs to probe in this round, or None when done.

        This is the only place a policy may draw randomness, and it
        must consume the stream identically regardless of how the
        resulting trials are later evaluated.
        """
        ...

    def select(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        """Digest one round's measurements into a selection.

        For multi-round policies this is called once per round; the
        last round's result is the trial's outcome.
        """
        ...

    def training_time_us(self, probes_used: int, n_rounds: int = 1) -> float:
        """Mutual training airtime for a trial of this shape."""
        ...

    # Optional fast path (not part of the Protocol's required surface):
    #
    # def select_batch(self, sector_ids, snr_db, rssi_dbm=None, mask=None)
    #     -> List[SelectionResult]
    #
    # Row-sequential batched twin of `select` over padded trial arrays,
    # element-for-element identical to scalar calls (the PR-2 batched
    # engine contract).


@dataclass(frozen=True)
class PolicyOutcome:
    """Result of one interactive (round-driven) training."""

    result: SelectionResult
    probes_used: int
    n_rounds: int
    training_time_us: float
