"""Tests for the beacon-interval / A-BFT association machinery."""

import numpy as np
import pytest

from repro.channel import conference_room, lab_environment
from repro.geometry import Orientation
from repro.mac import ABFTConfig, AssociationSimulator, Station
from repro.phased_array import PhasedArray


def _make_stations(environment, count, spread_m=0.8):
    stations = []
    for index in range(count):
        offset = np.array([0.0, (index - (count - 1) / 2.0) * spread_m, 0.0])
        stations.append(
            Station(
                f"sta{index}",
                index + 1,
                PhasedArray.talon(np.random.default_rng(100 + index)),
                position_m=environment.rx_position_m + offset,
                orientation=Orientation(yaw_deg=180.0),
            )
        )
    return stations


@pytest.fixture
def ap():
    environment = lab_environment(3.0)
    return Station(
        "ap", 0, PhasedArray.talon(np.random.default_rng(99)),
        position_m=environment.tx_position_m,
    )


class TestABFTConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ABFTConfig(n_slots=0)
        with pytest.raises(ValueError):
            ABFTConfig(frames_per_slot=0)


class TestAssociation:
    def test_single_station_associates_first_bi(self, ap, rng):
        environment = lab_environment(3.0)
        stations = _make_stations(environment, 1)
        simulator = AssociationSimulator(ap, stations, environment)
        outcome = simulator.run(rng)
        assert outcome.association_bi == {"sta0": 0}
        assert outcome.collisions == 0
        assert outcome.association_delay_us("sta0") == 0.0

    def test_station_learns_both_sectors(self, ap, rng):
        environment = lab_environment(3.0)
        stations = _make_stations(environment, 1)
        simulator = AssociationSimulator(ap, stations, environment)
        outcome = simulator.run(rng)
        assert "sta0" in outcome.ap_tx_sector_for
        assert "sta0" in outcome.station_tx_sector
        assert stations[0].tx_sector_id == outcome.station_tx_sector["sta0"]

    def test_contention_causes_collisions_and_delay(self, ap, rng):
        environment = conference_room(6.0)
        stations = _make_stations(environment, 4)
        simulator = AssociationSimulator(
            ap, stations, environment, abft=ABFTConfig(n_slots=2)
        )
        outcome = simulator.run(rng)
        assert len(outcome.association_bi) == 4
        assert outcome.collisions > 0
        assert max(outcome.association_bi.values()) > 0  # someone waited

    def test_more_slots_reduce_collisions(self, ap):
        environment = conference_room(6.0)

        def run_with_slots(n_slots: int) -> int:
            stations = _make_stations(environment, 4)
            simulator = AssociationSimulator(
                ap, stations, environment, abft=ABFTConfig(n_slots=n_slots)
            )
            return simulator.run(np.random.default_rng(77)).collisions

        assert run_with_slots(8) <= run_with_slots(1)

    def test_bi_budget_respected(self, ap, rng):
        environment = conference_room(6.0)
        stations = _make_stations(environment, 3)
        simulator = AssociationSimulator(
            ap, stations, environment, abft=ABFTConfig(n_slots=1)
        )
        outcome = simulator.run(rng, max_beacon_intervals=1)
        assert outcome.beacon_intervals_run == 1
        assert len(outcome.association_bi) <= 1  # one slot, one winner max

    def test_needs_stations(self, ap):
        with pytest.raises(ValueError):
            AssociationSimulator(ap, [], lab_environment(3.0))
