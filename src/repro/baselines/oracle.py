"""Oracle selector: the unbeatable reference for SNR-loss curves.

Figure 9 measures the loss of each algorithm against "the sector with
the highest SNR" — an oracle that sees the true (noise-free) SNR of
every sector.  No real device can implement it; it exists to anchor
the comparison.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..core.selector import SelectionResult

__all__ = ["OracleSelector"]


class OracleSelector:
    """Selects using ground-truth SNR values supplied per sweep."""

    def __init__(self, sector_ids: Sequence[int]):
        if not sector_ids:
            raise ValueError("oracle needs a candidate set")
        self._sector_ids = list(sector_ids)

    def select_from_truth(self, true_snr_db: np.ndarray) -> SelectionResult:
        """Pick the argmax of the ground-truth SNR vector.

        Args:
            true_snr_db: true SNR per candidate sector, aligned with
                the constructor's ``sector_ids``.
        """
        truth = np.asarray(true_snr_db, dtype=float)
        if truth.shape != (len(self._sector_ids),):
            raise ValueError(
                f"truth vector shape {truth.shape} does not match the "
                f"candidate set shape ({len(self._sector_ids)},)"
            )
        return SelectionResult(sector_id=self._sector_ids[int(np.argmax(truth))])

    def best_snr_db(self, true_snr_db: np.ndarray) -> float:
        """The optimal achievable SNR for this sweep."""
        truth = np.asarray(true_snr_db, dtype=float)
        return float(truth.max())
