"""Beacon and sector-sweep transmission schedules (paper Table 1).

The Talon AD7200 transmits beacon and SSW bursts over fixed sector
sequences, identified in the paper by capturing frames in monitor mode.
``CDOWN`` counts the remaining frames in a burst:

* **Beacon** bursts use sector 63 at CDOWN 33 and sectors 1–31 at
  CDOWN 31…1 (CDOWN 34, 32 and 0 are unused slots).
* **Sweep** bursts use sectors 1–31 at CDOWN 34…4 and sectors 61, 62,
  63 at CDOWN 2, 1, 0 (CDOWN 3 is unused).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = [
    "BEACON_SCHEDULE",
    "SWEEP_SCHEDULE",
    "beacon_burst",
    "sweep_burst",
    "custom_sweep_burst",
    "schedule_table_rows",
]


def _beacon_schedule() -> Dict[int, int]:
    schedule = {33: 63}
    # Sector s is transmitted at CDOWN 32 - s for s in 1..31.
    for sector_id in range(1, 32):
        schedule[32 - sector_id] = sector_id
    return schedule


def _sweep_schedule() -> Dict[int, int]:
    # Sector s is transmitted at CDOWN 35 - s for s in 1..31.
    schedule = {35 - sector_id: sector_id for sector_id in range(1, 32)}
    schedule[2] = 61
    schedule[1] = 62
    schedule[0] = 63
    return schedule


#: Map CDOWN → sector ID for beacon bursts (unused slots absent).
BEACON_SCHEDULE: Dict[int, int] = _beacon_schedule()

#: Map CDOWN → sector ID for sector-sweep bursts (unused slots absent).
SWEEP_SCHEDULE: Dict[int, int] = _sweep_schedule()


def _burst(schedule: Dict[int, int]) -> List[Tuple[int, int]]:
    """``(cdown, sector_id)`` pairs in transmission (decreasing) order."""
    return [(cdown, schedule[cdown]) for cdown in sorted(schedule, reverse=True)]


def beacon_burst() -> List[Tuple[int, int]]:
    """The beacon burst in transmission order."""
    return _burst(BEACON_SCHEDULE)


def sweep_burst() -> List[Tuple[int, int]]:
    """The full 34-sector sweep burst in transmission order."""
    return _burst(SWEEP_SCHEDULE)


def custom_sweep_burst(sector_ids: Sequence[int]) -> List[Tuple[int, int]]:
    """A reduced sweep over a probing subset (compressive selection).

    CDOWN counts down from ``len(sector_ids) - 1`` to 0 as the standard
    requires, whatever the subset.
    """
    if not sector_ids:
        raise ValueError("a sweep burst needs at least one sector")
    if len(set(sector_ids)) != len(sector_ids):
        raise ValueError("probing sectors must be unique")
    count = len(sector_ids)
    return [(count - 1 - index, sector_id) for index, sector_id in enumerate(sector_ids)]


def schedule_table_rows(max_cdown: int = 34) -> List[Tuple[str, List[str]]]:
    """Render Table 1: rows of sector-or-dash per CDOWN column."""
    columns = list(range(max_cdown, -1, -1))
    rows = []
    for label, schedule in (("Beacon", BEACON_SCHEDULE), ("Sweep", SWEEP_SCHEDULE)):
        cells = [str(schedule[cdown]) if cdown in schedule else "-" for cdown in columns]
        rows.append((label, cells))
    return rows
