"""Bench (extension): beacon-interval association (BTI + A-BFT).

Exercises the §4.1 machinery at network scale: an AP beacons over the
Table-1 schedule every 102.4 ms; stations that heard a beacon contend
in A-BFT slots with responder sweeps.  Expected shape: a lone station
associates in the first beacon interval; with more stations than
A-BFT slots, collisions stretch the tail of the association delay.
"""

import numpy as np

from repro.channel import conference_room, lab_environment
from repro.geometry import Orientation
from repro.mac import ABFTConfig, AssociationSimulator, Station
from repro.phased_array import PhasedArray


def _deploy(environment, n_stations):
    ap = Station(
        "ap", 0, PhasedArray.talon(np.random.default_rng(1)),
        position_m=environment.tx_position_m,
    )
    stations = [
        Station(
            f"sta{index}",
            index + 1,
            PhasedArray.talon(np.random.default_rng(50 + index)),
            position_m=environment.rx_position_m
            + np.array([0.0, (index - (n_stations - 1) / 2.0) * 0.7, 0.0]),
            orientation=Orientation(yaw_deg=180.0),
        )
        for index in range(n_stations)
    ]
    return ap, stations


def _run_association():
    rng = np.random.default_rng(3)
    rows = ["association (extension): A-BFT contention"]
    results = {}
    environment = lab_environment(3.0)
    ap, stations = _deploy(environment, 1)
    lone = AssociationSimulator(ap, stations, environment).run(rng)
    results["lone"] = lone
    rows.append(
        f"1 station, 8 slots: associated in BI {lone.association_bi['sta0']}, "
        f"{lone.collisions} collisions"
    )

    environment = conference_room(6.0)
    for n_slots in (1, 8):
        ap, stations = _deploy(environment, 6)
        outcome = AssociationSimulator(
            ap, stations, environment, abft=ABFTConfig(n_slots=n_slots)
        ).run(np.random.default_rng(3))
        results[f"slots{n_slots}"] = outcome
        last_bi = max(outcome.association_bi.values()) if outcome.association_bi else -1
        rows.append(
            f"6 stations, {n_slots} slots: {len(outcome.association_bi)}/6 associated, "
            f"last in BI {last_bi}, {outcome.collisions} collisions, "
            f"{outcome.beacon_intervals_run} BIs"
        )
    return rows, results


def test_association_contention(benchmark, report_rows):
    rows, results = benchmark.pedantic(_run_association, rounds=1, iterations=1)
    report_rows(rows)

    # A lone station joins in the very first beacon interval.
    assert results["lone"].association_bi["sta0"] == 0
    assert results["lone"].collisions == 0

    # Everyone eventually associates in both contention settings.
    assert len(results["slots1"].association_bi) == 6
    assert len(results["slots8"].association_bi) == 6

    # One slot for six stations collides heavily and takes longer.
    assert results["slots1"].collisions > results["slots8"].collisions
    assert max(results["slots1"].association_bi.values()) >= max(
        results["slots8"].association_bi.values()
    )
