"""Nexmon-style firmware patch framework.

Real patches are C functions cross-compiled for the ARC600 cores and
written into the high-address (writable) remap of the code partitions.
We model a patch as an opaque binary image plus the behavioural hooks
it installs on the simulated chip.  The framework enforces the memory
constraints of Figure 1: images land in the patch area of the right
core, never exceed it, and are written through the *high* alias (a
low-address write would trip write protection).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Type

from .chip import QCA9500, SweepReport
from .ringbuffer import RingBuffer
from .wmi import (
    WmiClearSectorOverride,
    WmiCommand,
    WmiDrainSweepReports,
    WmiSetSectorOverride,
)

__all__ = [
    "Patch",
    "PatchFramework",
    "signal_strength_extraction_patch",
    "sector_override_patch",
]


def _patch_image(name: str, size: int) -> bytes:
    """Deterministic stand-in for a compiled ARC600 patch image."""
    if size <= 0:
        raise ValueError("image size must be positive")
    digest = hashlib.sha256(name.encode()).digest()
    repeated = (digest * (size // len(digest) + 1))[:size]
    return bytes(repeated)


@dataclass(frozen=True)
class Patch:
    """One firmware patch: an image plus the hooks it installs.

    Attributes:
        name: patch identifier.
        processor: which core's patch area hosts the image.
        image: the binary blob written into patch memory.
        install_hooks: callable that wires the behavioural hooks into
            the chip once the image is in place.
    """

    name: str
    processor: str
    image: bytes
    install_hooks: Callable[[QCA9500], None]

    def __post_init__(self) -> None:
        if self.processor not in ("ucode", "firmware"):
            raise ValueError("processor must be 'ucode' or 'firmware'")
        if not self.image:
            raise ValueError("patch image must be non-empty")


@dataclass
class _InstalledPatch:
    patch: Patch
    address: int


class PatchFramework:
    """Installs patches into a chip, tracking patch-area usage."""

    def __init__(self, chip: QCA9500):
        self.chip = chip
        self._installed: List[_InstalledPatch] = []
        self._used_bytes: Dict[str, int] = {"ucode": 0, "firmware": 0}

    @property
    def installed_patches(self) -> List[str]:
        return [installed.patch.name for installed in self._installed]

    def patch_address(self, name: str) -> int:
        """High address where a named patch's image was written."""
        for installed in self._installed:
            if installed.patch.name == name:
                return installed.address
        raise KeyError(f"patch {name!r} is not installed")

    def install(self, patch: Patch) -> int:
        """Write the patch image and wire its hooks; returns address.

        Raises:
            ValueError: duplicate patch or patch area exhausted.
        """
        if patch.name in self.installed_patches:
            raise ValueError(f"patch {patch.name!r} already installed")
        start, end = self.chip.memory.patch_area(patch.processor)
        offset = self._used_bytes[patch.processor]
        address = start + offset
        if address + len(patch.image) > end:
            raise ValueError(
                f"patch area of {patch.processor} core exhausted: "
                f"{len(patch.image)} bytes requested, "
                f"{end - address} available"
            )
        # Written through the high alias — the low alias is read-only.
        self.chip.memory.write(address, patch.image)
        patch.install_hooks(self.chip)
        self._used_bytes[patch.processor] = offset + len(patch.image)
        self._installed.append(_InstalledPatch(patch=patch, address=address))
        return address


def signal_strength_extraction_patch(buffer_capacity: int = 256) -> Patch:
    """§3.3: copy every sweep report into a host-drainable ring buffer.

    Installs a frame hook on the ucode sweep path and a
    :class:`WmiDrainSweepReports` handler so the host can read the
    buffer from user space through the driver.
    """

    def install(chip: QCA9500) -> None:
        buffer: RingBuffer[SweepReport] = RingBuffer(buffer_capacity)

        def on_frame(_chip: QCA9500, report: SweepReport) -> None:
            buffer.push(report)

        def drain(_chip: QCA9500, _command: WmiCommand) -> List[SweepReport]:
            return buffer.drain()

        chip.register_frame_hook(on_frame)
        chip.register_wmi_handler(WmiDrainSweepReports, drain)

    return Patch(
        name="signal-strength-extraction",
        processor="ucode",
        image=_patch_image("signal-strength-extraction", 0x600),
        install_hooks=install,
    )


def sector_override_patch() -> Patch:
    """§3.4: WMI-armed switch overriding the SSW feedback sector.

    The stock selection keeps running; when armed, the feedback field
    of SSW, SSW-feedback and SSW-ACK frames carries the host's sector.
    """

    def install(chip: QCA9500) -> None:
        state: Dict[str, Optional[int]] = {"override": None}

        def set_override(_chip: QCA9500, command: WmiCommand) -> None:
            assert isinstance(command, WmiSetSectorOverride)
            if command.sector_id not in _chip.codebook:
                raise ValueError(f"sector {command.sector_id} not in codebook")
            state["override"] = command.sector_id

        def clear_override(_chip: QCA9500, _command: WmiCommand) -> None:
            state["override"] = None

        def provide(_chip: QCA9500) -> Optional[int]:
            return state["override"]

        chip.register_wmi_handler(WmiSetSectorOverride, set_override)
        chip.register_wmi_handler(WmiClearSectorOverride, clear_override)
        chip.register_feedback_provider(provide)

    return Patch(
        name="sector-override",
        processor="firmware",
        image=_patch_image("sector-override", 0x400),
        install_hooks=install,
    )
