"""The observability layer: tracing, metrics, reporting, CLI surface.

The contracts under test (DESIGN.md §10):

* **Zero result impact** — a traced run's records and manifest results
  are bit-identical to an untraced run's; observability reads clocks
  and dict state, never the RNG.
* **Deterministic aggregation** — a ``jobs=4`` run's trace carries the
  same span set (names + attributes, timings aside) and the same
  merged metric counters as the ``jobs=1`` run of the same spec;
  worker payloads are absorbed in block order, never arrival order.
* **Fault visibility** — injected faults are tagged ``injected=true``
  in the trace and the tag survives both the cross-process merge and a
  file round-trip.
* **Disabled-by-default** — with no active session every dispatcher is
  a no-op (the perf gate ``runner_obs_overhead_pct`` prices it).
"""

import json
import logging

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    buckets_for,
    escape_label_value,
    unescape_label_value,
)
from repro.obs.report import format_report_rows, load_report_target, span_rollup
from repro.obs.trace import TraceRecorder, read_trace_jsonl, write_trace_jsonl
from repro.runtime import (
    FaultPlan,
    FaultSpec,
    PolicySpec,
    RetryPolicy,
    RunManifest,
    ScenarioRunner,
    ScenarioSpec,
)


def _small_spec() -> ScenarioSpec:
    return ScenarioSpec(
        scenario="policy-eval",
        seed=2017,
        policies=(
            PolicySpec("css", {"n_probes": 14}),
            PolicySpec("full-sweep", {}),
        ),
        params={"azimuth_step_deg": 30.0, "distance_m": 6.0, "n_sweeps": 3},
    )


def _span_set(events, ignore_attrs=("jobs",)):
    """Order-free span signature: (name, sorted attrs) without timings."""
    out = []
    for event in events:
        if event.get("type") != "span":
            continue
        attrs = {
            key: value
            for key, value in event.get("attrs", {}).items()
            if key not in ignore_attrs
        }
        out.append((event["name"], tuple(sorted(attrs.items()))))
    return sorted(out)


def _result_signature(outcome):
    return repr(outcome.result.rows)


# ----------------------------------------------------------------------
# Metrics registry.
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_keys_sort_labels(self):
        registry = MetricsRegistry()
        registry.inc("calls_total", path="batched", policy="css")
        registry.inc("calls_total", policy="css", path="batched")
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {
            'calls_total{path="batched",policy="css"}': 2
        }

    def test_histogram_uses_fixed_buckets_with_overflow_slot(self):
        registry = MetricsRegistry()
        registry.observe("runner_retry_wait_seconds", 0.02)
        registry.observe("runner_retry_wait_seconds", 99.0)  # beyond last edge
        histogram = registry.snapshot()["histograms"]["runner_retry_wait_seconds"]
        assert histogram["le"] == list(buckets_for("runner_retry_wait_seconds"))
        assert len(histogram["counts"]) == len(histogram["le"]) + 1
        assert histogram["counts"][1] == 1  # 0.02 <= 0.025
        assert histogram["counts"][-1] == 1  # overflow
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(99.02)

    def test_unknown_family_falls_back_to_default_buckets(self):
        assert buckets_for("never_heard_of_it_seconds") == DEFAULT_BUCKETS

    def test_merge_adds_counters_and_buckets_gauge_takes_incoming(self):
        ours = MetricsRegistry()
        ours.inc("runner_retries_total", 2)
        ours.observe("runner_block_seconds", 0.002)
        ours.set_gauge("pool_size", 2)
        theirs = MetricsRegistry()
        theirs.inc("runner_retries_total", 3)
        theirs.observe("runner_block_seconds", 0.002)
        theirs.set_gauge("pool_size", 4)
        ours.merge(theirs.snapshot())
        snapshot = ours.snapshot()
        assert snapshot["counters"]["runner_retries_total"] == 5
        assert snapshot["gauges"]["pool_size"] == 4.0
        assert snapshot["histograms"]["runner_block_seconds"]["count"] == 2

    def test_prometheus_rendering_is_cumulative(self):
        registry = MetricsRegistry()
        registry.inc("runner_retries_total")
        registry.observe("runner_retry_wait_seconds", 0.02)
        registry.observe("runner_retry_wait_seconds", 0.2)
        text = registry.render_prometheus()
        assert "# TYPE runner_retries_total counter" in text
        assert "runner_retries_total 1" in text
        assert 'runner_retry_wait_seconds_bucket{le="0.025"} 1' in text
        assert 'runner_retry_wait_seconds_bucket{le="0.25"} 2' in text
        assert 'runner_retry_wait_seconds_bucket{le="+Inf"} 2' in text
        assert "runner_retry_wait_seconds_count 2" in text

    @pytest.mark.parametrize(
        "raw",
        [
            'fig7"x',
            "back\\slash",
            "multi\nline",
            '\\"mixed\\n"\n\\',
            "",
            "plain",
            "trailing\\",
        ],
    )
    def test_label_escaping_round_trips(self, raw):
        escaped = escape_label_value(raw)
        # Exposition-breaking characters never survive unescaped.
        assert '"' not in escaped.replace('\\"', "")
        assert "\n" not in escaped
        assert unescape_label_value(escaped) == raw

    def test_escaped_labels_render_parseable_exposition(self):
        registry = MetricsRegistry()
        registry.inc("runs_total", scenario='fig7"x\n\\end')
        text = registry.render_prometheus()
        (sample,) = [line for line in text.splitlines() if "runs_total{" in line]
        # The rendered line stays a single line and its quoted value
        # unescapes back to the original label.
        value = sample.split('scenario="', 1)[1].rsplit('"}', 1)[0]
        assert unescape_label_value(value) == 'fig7"x\n\\end'

    def test_escaped_label_keys_merge_and_histogram_le_stays_safe(self):
        ours = MetricsRegistry()
        theirs = MetricsRegistry()
        for registry in (ours, theirs):
            registry.inc("runs_total", scenario='a"b')
            registry.observe("runner_block_seconds", 0.002, scenario="tricky\\")
        ours.merge(theirs.snapshot())
        snapshot = ours.snapshot()
        assert snapshot["counters"]['runs_total{scenario="a\\"b"}'] == 2
        text = ours.render_prometheus()
        # _with_le appends ,le="..." after the escaped value: the
        # trailing backslash must have been doubled or it would eat the
        # closing quote.
        assert 'scenario="tricky\\\\",le="0.0025"' in text


# ----------------------------------------------------------------------
# Trace recorder.
# ----------------------------------------------------------------------


class TestTraceRecorder:
    def test_spans_nest_via_explicit_parent_links(self):
        recorder = TraceRecorder()
        with recorder.span("outer", policy="css"):
            with recorder.span("inner"):
                recorder.event("tick", n=1)
        spans = {e["name"]: e for e in recorder.events}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        assert spans["tick"]["parent"] == spans["inner"]["id"]
        assert spans["outer"]["attrs"] == {"policy": "css"}
        assert spans["outer"]["duration_s"] >= spans["inner"]["duration_s"]

    def test_exception_exit_tags_the_span(self):
        recorder = TraceRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("doomed"):
                raise RuntimeError("boom")
        (span,) = recorder.events
        assert span["attrs"]["error"] == "RuntimeError"

    def test_drain_hands_over_and_empties_the_buffer(self):
        recorder = TraceRecorder()
        recorder.event("one")
        drained = recorder.drain()
        assert [e["name"] for e in drained] == ["one"]
        assert len(recorder) == 0

    def test_absorb_prefixes_ids_and_reparents_roots(self):
        worker = TraceRecorder()
        with worker.span("execute.block", block=3):
            worker.event("retry")
        runner = TraceRecorder()
        with runner.span("execute.policy") as policy_span:
            parent_id = policy_span.id
        runner.absorb(worker.drain(), parent_id, "c0b3")
        absorbed = [e for e in runner.events if e.get("origin") == "c0b3"]
        span = next(e for e in absorbed if e["type"] == "span")
        event = next(e for e in absorbed if e["type"] == "event")
        assert span["id"].startswith("c0b3.")
        assert span["parent"] == parent_id  # root re-parented
        assert event["parent"] == span["id"]  # inner link rewritten

    def test_jsonl_round_trip_and_foreign_file_rejection(self, tmp_path):
        recorder = TraceRecorder()
        with recorder.span("stage", policy="css"):
            pass
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, recorder.events, header={"seed": 7})
        header, events = read_trace_jsonl(path)
        assert header["format"] == "repro-trace" and header["seed"] == 7
        assert events == recorder.events
        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"not": "a trace"}\n')
        with pytest.raises(ValueError):
            read_trace_jsonl(foreign)


# ----------------------------------------------------------------------
# Logging setup (satellite: one CLI-wide logging entry point).
# ----------------------------------------------------------------------


@pytest.fixture
def _restore_repro_logger():
    logger = logging.getLogger("repro")
    before = logger.level
    yield
    logger.setLevel(before)


class TestLoggingSetup:
    def test_explicit_level_wins(self, monkeypatch, _restore_repro_logger):
        monkeypatch.setenv(obs.LOG_LEVEL_ENV, "ERROR")
        assert obs.logging_setup("debug") == logging.DEBUG
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_env_var_is_the_fallback(self, monkeypatch, _restore_repro_logger):
        monkeypatch.setenv(obs.LOG_LEVEL_ENV, "info")
        assert obs.logging_setup() == logging.INFO

    def test_default_is_warning(self, monkeypatch, _restore_repro_logger):
        monkeypatch.delenv(obs.LOG_LEVEL_ENV, raising=False)
        assert obs.logging_setup() == logging.WARNING

    def test_unknown_level_raises(self, _restore_repro_logger):
        with pytest.raises(ValueError):
            obs.logging_setup("chatty")


# ----------------------------------------------------------------------
# Dispatchers are no-ops without a session.
# ----------------------------------------------------------------------


class TestDisabledByDefault:
    def test_every_dispatcher_is_inert_without_a_session(self):
        assert obs.active_session() is None
        assert not obs.enabled()
        span = obs.span("anything", policy="css")
        with span:
            obs.event("tick")
            obs.inc("counter")
            obs.observe("runner_block_seconds", 0.1)
            obs.set_gauge("gauge", 1.0)
        assert span.id is None
        assert obs.active_session() is None

    def test_activation_is_scoped_and_restores_the_previous(self):
        session = obs.ObsSession()
        previous = obs.activate(session)
        try:
            assert obs.enabled() and obs.active_session() is session
            obs.inc("counter")
            assert session.metrics.snapshot()["counters"]["counter"] == 1
        finally:
            obs.deactivate(previous)
        assert obs.active_session() is previous


# ----------------------------------------------------------------------
# Manifest health rendering (satellite: empty/partial health dicts).
# ----------------------------------------------------------------------


def _manifest(health, observability=None):
    return RunManifest(
        scenario="policy-eval", spec_digest="ab" * 32, seed=1, jobs=1,
        git_rev="deadbeef", started="now", wall_time_s=1.0,
        health=health, observability=observability or {},
    )


class TestManifestHealthRendering:
    def test_empty_health_renders_clean_without_empty_rows(self):
        rows = _manifest({}).format_rows()
        assert "  health clean" in rows
        assert not any("took" in row for row in rows)
        assert not any("=" in row for row in rows if row.startswith("  health"))

    def test_zero_counters_and_null_attempts_render_clean(self):
        rows = _manifest(
            {"blocks": 0, "retries": 0, "attempts": None}
        ).format_rows()
        assert "  health clean" in rows

    def test_partially_populated_health_renders_only_nonzero(self):
        rows = _manifest(
            {"blocks": 4, "retries": 1, "timeouts": 0,
             "attempts": {"css[0]": 2}}
        ).format_rows()
        assert "  health blocks=4 retries=1" in rows
        assert "    css[0] took 2 attempts" in rows
        assert not any("timeouts" in row for row in rows)

    def test_observability_summary_row(self):
        rows = _manifest(
            {},
            observability={
                "enabled": True,
                "spans": {"execute.block": {"count": 10, "total_s": 1, "max_s": 1}},
            },
        ).format_rows()
        assert any(row.startswith("  observability 10 span(s)") for row in rows)
        assert _manifest({}).format_rows() == [
            row for row in _manifest({}).format_rows() if "observability" not in row
        ]


# ----------------------------------------------------------------------
# Runtime integration: determinism, merge, fault tagging.
# ----------------------------------------------------------------------


class TestTracedRunDeterminism:
    @pytest.fixture(scope="class")
    def untraced(self):
        with ScenarioRunner() as runner:
            return runner.run(_small_spec())

    @pytest.fixture(scope="class")
    def traced(self):
        session = obs.ObsSession()
        with ScenarioRunner(obs=session) as runner:
            outcome = runner.run(_small_spec())
        return outcome, session

    @pytest.fixture(scope="class")
    def traced_jobs4(self):
        session = obs.ObsSession()
        with ScenarioRunner(jobs=4, obs=session) as runner:
            outcome = runner.run(_small_spec())
        return outcome, session

    def test_tracing_never_touches_results(self, untraced, traced):
        outcome, _ = traced
        assert _result_signature(outcome) == _result_signature(untraced)
        assert outcome.manifest.health == untraced.manifest.health

    def test_untraced_manifest_has_no_observability(self, untraced):
        assert untraced.manifest.observability == {}
        assert untraced.manifest.to_json()["observability"] == {}

    def test_traced_manifest_embeds_the_rollup(self, traced):
        outcome, session = traced
        section = outcome.manifest.observability
        assert section["enabled"] is True
        assert section["spans"]["execute.block"]["count"] == 10
        assert section["spans"]["scenario.run"]["count"] == 1
        assert len(section["slowest_blocks"]) == 5
        counters = section["metrics"]["counters"]
        # css blocks ride the fused single-pass kernel; full-sweep has
        # only the plain batched twin.
        assert counters['runner_kernel_path_total{path="fused"}'] == 5
        assert counters['runner_kernel_path_total{path="batched"}'] == 5
        assert len(session.tracer.events) > 0

    def test_jobs4_results_match_jobs1(self, traced, traced_jobs4):
        assert _result_signature(traced_jobs4[0]) == _result_signature(traced[0])

    def test_jobs4_trace_has_the_same_span_set(self, traced, traced_jobs4):
        _, s1 = traced
        _, s4 = traced_jobs4
        assert _span_set(s4.tracer.events) == _span_set(s1.tracer.events)

    def test_jobs4_merged_counters_match_jobs1(self, traced, traced_jobs4):
        counters1 = traced[0].manifest.observability["metrics"]["counters"]
        counters4 = traced_jobs4[0].manifest.observability["metrics"]["counters"]
        assert counters1 == counters4

    def test_worker_spans_are_absorbed_in_block_order(self, traced_jobs4):
        _, session = traced_jobs4
        origins = [
            event["origin"]
            for event in session.tracer.events
            if event.get("origin")
        ]
        assert origins == sorted(origins)
        assert origins  # the pool path actually ran

    def test_worker_spans_reparent_onto_the_policy_span(self, traced_jobs4):
        _, session = traced_jobs4
        events = session.tracer.events
        policy_ids = {
            event["id"]
            for event in events
            if event["type"] == "span" and event["name"] == "execute.policy"
        }
        worker_roots = [
            event
            for event in events
            if event.get("origin") and "." in event["id"]
            and not event["parent"].startswith(event["origin"])
        ]
        assert worker_roots
        assert {event["parent"] for event in worker_roots} <= policy_ids


class TestInjectedFaultTagging:
    @pytest.fixture(scope="class")
    def faulty_jobs4(self):
        """jobs=4 with a worker-side hang (survivable) and a retried
        exception: both must surface as ``injected=true`` in the trace."""
        session = obs.ObsSession()
        plan = FaultPlan(
            faults=(FaultSpec("hang", block=1), FaultSpec("exception", block=0)),
            hang_s=0.01,
        )
        with ScenarioRunner(
            jobs=4,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0),
            faults=plan,
            obs=session,
        ) as runner:
            outcome = runner.run(_small_spec())
        return outcome, session

    def test_fault_results_still_match_clean(self, faulty_jobs4):
        with ScenarioRunner() as runner:
            clean = runner.run(_small_spec())
        assert _result_signature(faulty_jobs4[0]) == _result_signature(clean)

    def test_injected_events_carry_the_tag(self, faulty_jobs4):
        _, session = faulty_jobs4
        injected = [
            event
            for event in session.tracer.events
            if event["type"] == "event" and event["name"] == "fault.injected"
        ]
        assert injected
        assert all(event["attrs"]["injected"] is True for event in injected)
        kinds = {event["attrs"]["kind"] for event in injected}
        assert kinds == {"hang", "exception"}

    def test_worker_block_span_keeps_the_tag_through_the_merge(self, faulty_jobs4):
        _, session = faulty_jobs4
        tagged = [
            event
            for event in session.tracer.events
            if event["type"] == "span"
            and event["name"] == "execute.block"
            and event["attrs"].get("injected")
        ]
        # the hang rode into the worker (block 1 slept and succeeded),
        # so its span shipped back through the jobs=4 merge
        assert any(event.get("origin") for event in tagged)
        assert all(event["attrs"]["injected"] is True for event in tagged)

    def test_tag_survives_a_file_round_trip(self, faulty_jobs4, tmp_path):
        _, session = faulty_jobs4
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, session.tracer.events, header={"seed": 2017})
        _, events = read_trace_jsonl(path)
        tags = [
            event["attrs"]["injected"]
            for event in events
            if event["attrs"].get("injected") is not None
        ]
        assert tags and all(tag is True for tag in tags)

    def test_health_and_metrics_agree_on_injection_counts(self, faulty_jobs4):
        outcome, _ = faulty_jobs4
        counters = outcome.manifest.observability["metrics"]["counters"]
        injected_total = sum(
            value
            for key, value in counters.items()
            if key.startswith("runner_injected_total")
        )
        assert injected_total == outcome.manifest.health["injected"]
        assert counters["runner_retries_total"] == outcome.manifest.health["retries"]


# ----------------------------------------------------------------------
# Report rendering.
# ----------------------------------------------------------------------


class TestReport:
    def test_span_rollup_aggregates_and_ranks(self):
        events = [
            {"type": "span", "name": "execute.block", "duration_s": 0.2,
             "attrs": {"policy": "css", "call": 0, "block": 1}},
            {"type": "span", "name": "execute.block", "duration_s": 0.5,
             "attrs": {"policy": "css", "call": 0, "block": 0}},
            {"type": "event", "name": "retry", "attrs": {}},
        ]
        rollup = span_rollup(events, top=1)
        assert rollup["spans"]["execute.block"]["count"] == 2
        assert rollup["spans"]["execute.block"]["max_s"] == 0.5
        assert rollup["policies"]["css"]["total_s"] == pytest.approx(0.7)
        assert [b["block"] for b in rollup["slowest_blocks"]] == [0]

    def test_report_loads_either_artifact(self, tmp_path):
        session = obs.ObsSession(trace_path=tmp_path / "trace.jsonl")
        with ScenarioRunner(obs=session) as runner:
            outcome = runner.run(_small_spec())
        manifest_path = tmp_path / "manifest.json"
        outcome.manifest.save(manifest_path)
        from_trace = load_report_target(tmp_path / "trace.jsonl")
        from_manifest = load_report_target(manifest_path)
        assert from_trace["source"] == "trace"
        assert from_manifest["source"] == "manifest"
        assert from_trace["rollup"]["spans"] == from_manifest["rollup"]["spans"]
        rows = format_report_rows(from_trace)
        assert rows[0].startswith("report: per-stage latency breakdown")
        assert any("execute.block" in row for row in rows)
        assert any("top" in row and "slowest blocks" in row for row in rows)

    def test_untraced_manifest_is_refused(self, tmp_path):
        with ScenarioRunner() as runner:
            outcome = runner.run(_small_spec())
        path = tmp_path / "manifest.json"
        outcome.manifest.save(path)
        with pytest.raises(ValueError, match="no observability section"):
            load_report_target(path)


# ----------------------------------------------------------------------
# CLI surface.
# ----------------------------------------------------------------------


class TestCliObs:
    def test_run_trace_writes_a_readable_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        status = cli_main(
            ["run", "policy-eval", "--trace", str(trace)]
        )
        assert status == 0
        header, events = read_trace_jsonl(trace)
        assert header["scenario"] == "policy-eval"
        assert header["jobs"] == 1
        assert any(e["name"] == "scenario.run" for e in events)
        out = capsys.readouterr().out
        assert "wrote trace to" in out
        assert "observability" in out

    def test_report_renders_the_breakdown(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert cli_main(["run", "policy-eval", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert cli_main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-stage latency breakdown" in out
        assert "execute.block" in out

    def test_report_metrics_renders_prometheus_from_a_manifest(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "t.jsonl"
        manifest = tmp_path / "m.json"
        assert cli_main(
            ["run", "policy-eval", "--trace", str(trace),
             "--manifest", str(manifest)]
        ) == 0
        capsys.readouterr()
        assert cli_main(["report", str(manifest), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE runner_kernel_path_total counter" in out

    def test_report_refuses_a_foreign_file(self, tmp_path, capsys):
        path = tmp_path / "noise.json"
        path.write_text('{"hello": 1}\n')
        assert cli_main(["report", str(path)]) == 2
        assert "rerun with --trace" in capsys.readouterr().err

    def test_bad_log_level_exits_two(self, capsys):
        assert cli_main(["run", "--list", "--log-level", "chatty"]) == 2
        assert "unknown log level" in capsys.readouterr().err

    def test_log_level_flag_applies(self, _restore_repro_logger):
        assert cli_main(["run", "--list", "--log-level", "debug"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
