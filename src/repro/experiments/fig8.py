"""Figure 8: selection stability vs. number of probing sectors.

Stability is the share of sweeps that yield the direction's most
frequent ("modal") sector — the fraction of time spent in one sector.
The paper finds the exhaustive sweep stuck at 73.9 % (outliers keep
flipping its argmax between near-equal sectors) while compressive
selection crosses it around 13 probes and reaches ~95 % with all 34.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..channel.environment import conference_room
from ..core.compressive import CompressiveSectorSelector
from ..core.selector import SectorSweepSelector
from .common import build_testbed, random_probe_columns, record_directions

__all__ = ["Fig8Config", "Fig8Result", "run_fig8", "stability_of_selections"]


@dataclass(frozen=True)
class Fig8Config:
    seed: int = 8
    probe_counts: Sequence[int] = tuple(range(4, 35, 2))
    azimuth_step_deg: float = 5.0
    n_sweeps: int = 30


@dataclass
class Fig8Result:
    probe_counts: List[int]
    css_stability: List[float]
    ssw_stability: float

    def css_at(self, n_probes: int) -> float:
        return self.css_stability[self.probe_counts.index(n_probes)]

    def crossover_probes(self) -> int:
        """Smallest probe count where CSS beats the sweep's stability."""
        for n_probes, stability in zip(self.probe_counts, self.css_stability):
            if stability > self.ssw_stability:
                return n_probes
        return self.probe_counts[-1]

    def format_rows(self) -> List[str]:
        rows = [
            "fig8: selection stability (conference room)",
            f"SSW (full sweep): {self.ssw_stability:.3f}",
            "probes | CSS stability",
        ]
        for n_probes, stability in zip(self.probe_counts, self.css_stability):
            marker = " <- crosses SSW" if n_probes == self.crossover_probes() else ""
            rows.append(f"{n_probes:6d} | {stability:.3f}{marker}")
        return rows


def stability_of_selections(selections: Sequence[int]) -> float:
    """Share of the modal selection (time spent in one sector)."""
    if not selections:
        raise ValueError("need at least one selection")
    counts = Counter(selections)
    return counts.most_common(1)[0][1] / len(selections)


def run_fig8(config: Fig8Config = Fig8Config()) -> Fig8Result:
    """Run the stability experiment in the conference room."""
    testbed = build_testbed()
    rng = np.random.default_rng(config.seed)
    azimuths = np.arange(-60.0, 60.0 + 1e-9, config.azimuth_step_deg)
    recordings = record_directions(
        testbed, conference_room(6.0), azimuths, [0.0], config.n_sweeps, rng
    )
    tx_ids = testbed.tx_sector_ids

    # SSW: full-sweep argmax per recorded sweep.
    ssw_per_direction: List[float] = []
    for recording in recordings:
        selector = SectorSweepSelector()
        selections = [
            selector.select(list(sweep.values())).sector_id for sweep in recording.sweeps
        ]
        ssw_per_direction.append(stability_of_selections(selections))
    ssw_stability = float(np.mean(ssw_per_direction))

    # One hoisted selector, `reset()` per recording, one `select_batch`
    # per recording's sweeps — bit-identical to per-recording fresh
    # selectors driving scalar `select` (see fig9 for the same pattern).
    selector = CompressiveSectorSelector(testbed.pattern_table)
    id_row = np.asarray(tx_ids, dtype=np.intp)
    css_stability: List[float] = []
    for n_probes in config.probe_counts:
        per_direction: List[float] = []
        for recording in recordings:
            selector.reset()
            present, snr, rssi = recording.packed_sweeps(tx_ids)
            columns = np.stack(
                [
                    random_probe_columns(len(tx_ids), n_probes, rng)
                    for _ in recording.sweeps
                ]
            )
            sweep_rows = np.arange(len(recording.sweeps))[:, np.newaxis]
            results = selector.select_batch(
                id_row[columns],
                snr_db=snr[sweep_rows, columns],
                rssi_dbm=rssi[sweep_rows, columns],
                mask=present[sweep_rows, columns],
            )
            per_direction.append(
                stability_of_selections([result.sector_id for result in results])
            )
        css_stability.append(float(np.mean(per_direction)))

    return Fig8Result(
        probe_counts=list(config.probe_counts),
        css_stability=css_stability,
        ssw_stability=ssw_stability,
    )
