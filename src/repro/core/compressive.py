"""Compressive sector selection (the paper's core contribution, §2.2).

Two steps per sweep:

1. Probe ``M`` of the ``N`` available sectors and estimate the signal's
   path direction by correlating the received signal-strength vector
   against the measured 3D patterns (Eqs. 2, 3, 5).
2. Pick, among **all** ``N`` sectors, the one whose measured pattern
   has the highest gain at the estimated direction (Eq. 4).

``N`` can therefore be much larger than ``M`` — the selection quality
is bounded by the pattern knowledge, not the probe count.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .. import obs as _obs
from ..obs import quality as _quality
from ..geometry.grid import AngularGrid
from ..measurement.patterns import PatternTable
from .estimator import AngleEstimate, AngleEstimator
from .measurements import ProbeMeasurement
from .selector import SelectionResult

__all__ = ["CompressiveSectorSelector"]


class _FusedBatch(NamedTuple):
    """Per-row arrays from the stateless half of the fused select pass.

    Everything the stateful result builder needs, with no reference to
    selector state — rows are independent, so batches from several
    blocks may be stacked, run through :meth:`_fused_arrays` once, and
    rebuilt per block (see the chunked pool dispatch in the runner).
    """

    ids: np.ndarray          #: validated (T, M) intp sector ids
    snr: np.ndarray          #: validated (T, M) float SNR values
    sel_usable: np.ndarray   #: (T, M) bool — valid and known-sector
    need: np.ndarray         #: (T,) bool — row met ``min_probes``
    n_probes: np.ndarray     #: (T,) intp — finite usable count per row
    best_index: np.ndarray   #: (T,) intp — Eq. 3/5 argmax (-1 = none)
    best_corr: np.ndarray    #: (T,) float — correlation at the argmax
    sector_of: np.ndarray    #: (T,) intp — Eq. 4 winner (-1 = none)


class CompressiveSectorSelector:
    """Selects sectors from compressive probes and measured patterns."""

    def __init__(
        self,
        pattern_table: PatternTable,
        candidate_sector_ids: Optional[Sequence[int]] = None,
        search_grid: Optional[AngularGrid] = None,
        fusion: str = "product",
        domain: str = "linear",
        initial_sector_id: int = 1,
        min_probes: int = 2,
        fallback_correlation: float = 0.0,
        precomputed=None,
    ):
        """
        Args:
            pattern_table: measured patterns of every available sector.
            candidate_sector_ids: the ``N`` sectors eligible for the
                final selection (default: every table sector except the
                quasi-omni RX sector 0, i.e. all TX sectors).
            search_grid: angular grid for the Eq. 3 argmax.
            fusion: correlation fusion mode — ``"product"`` applies the
                Eq. 5 SNR×RSSI robustification (§5); ``"snr"`` and
                ``"rssi"`` use a single map (for the ablation study).
            domain: correlation domain, ``"linear"`` or ``"db"``.
            initial_sector_id: selection before any sweep succeeds.
            min_probes: below this many usable reports the selector
                falls back (argmax of what it has, else last choice).
            fallback_correlation: when the Eq. 3/5 peak correlation
                drops below this value the measured patterns clearly no
                longer describe the channel (e.g. a blocked LOS), and
                the selector falls back to the plain argmax of the
                probes.  0 (default) disables the fallback — the
                paper's protocol always trusts the patterns.
            precomputed: optional dict of ``pattern_matrix`` /
                ``prepared_matrix`` / ``candidate_matrix`` arrays to
                adopt instead of re-sampling the table on the grid —
                the zero-copy path for pool workers attaching a
                published shared-memory segment (byte copies of what
                construction would compute, so bit-invisible).
        """
        if candidate_sector_ids is None:
            candidate_sector_ids = [
                sector_id for sector_id in pattern_table.sector_ids if sector_id != 0
            ]
        unknown = [s for s in candidate_sector_ids if s not in pattern_table.sector_ids]
        if unknown:
            raise ValueError(f"candidate sectors without measured patterns: {unknown}")
        if min_probes < 2:
            raise ValueError("correlation needs at least two probes")

        self.pattern_table = pattern_table
        self.candidate_sector_ids = list(candidate_sector_ids)
        self.estimator = AngleEstimator(
            pattern_table,
            search_grid=search_grid,
            domain=domain,
            fusion=fusion,
            precomputed=precomputed,
        )
        if not 0.0 <= fallback_correlation <= 1.0:
            raise ValueError("fallback correlation must be in [0, 1]")
        self.min_probes = min_probes
        self.fallback_correlation = fallback_correlation
        self.initial_sector_id = initial_sector_id
        self._last_selection = initial_sector_id
        # Candidate gains on the search grid, for the Eq. 4 lookup.
        if precomputed is not None and "candidate_matrix" in precomputed:
            candidate_matrix = precomputed["candidate_matrix"]
            expected = (
                len(self.candidate_sector_ids),
                self.estimator.search_grid.n_points,
            )
            if candidate_matrix.shape != expected:
                raise ValueError(
                    f"precomputed candidate matrix shape {candidate_matrix.shape} "
                    f"does not match {expected}"
                )
            self._candidate_matrix = candidate_matrix
        else:
            self._candidate_matrix = pattern_table.sample_matrix(
                self.estimator.search_grid, self.candidate_sector_ids
            )
        self._candidate_ids_array = np.asarray(self.candidate_sector_ids, dtype=np.intp)

    @property
    def last_selection(self) -> int:
        return self._last_selection

    def reset(self) -> None:
        """Forget the selection history (as if freshly constructed).

        Experiments that evaluate many independent recordings reuse one
        selector (construction samples two full grid matrices) and call
        this between recordings instead of rebuilding it.
        """
        self._last_selection = self.initial_sector_id

    @property
    def n_candidates(self) -> int:
        return len(self.candidate_sector_ids)

    def best_sector_at(self, azimuth_deg: float, elevation_deg: float) -> int:
        """Eq. 4: the candidate with maximum measured gain there."""
        gains = self.pattern_table.vector(
            azimuth_deg, elevation_deg, self.candidate_sector_ids
        )
        return int(self.candidate_sector_ids[int(np.argmax(gains))])

    def _fallback(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        _obs.inc("selector_fallbacks_total")
        if measurements:
            best = max(measurements, key=lambda m: m.snr_db)
            self._last_selection = best.sector_id
            return SelectionResult(sector_id=best.sector_id, fallback=True)
        return SelectionResult(sector_id=self._last_selection, fallback=True)

    def select(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        """Run both steps on one sweep's measurements."""
        _obs.inc("selector_calls_total", path="scalar")
        usable = [m for m in measurements if self.estimator.has_sector(m.sector_id)]
        if len(usable) < self.min_probes:
            return self._fallback(usable)
        estimate = self.estimator.estimate(usable)
        if estimate.correlation < self.fallback_correlation:
            return self._fallback(usable)
        # Eq. 4 via the precomputed grid matrix: column at the argmax
        # grid point, maximized over candidates.  The estimate carries
        # its own flat grid index (same search grid the candidate
        # matrix was sampled on); estimators that interpolate off-grid
        # leave it None and pay the nearest-point lookup.
        grid_index = estimate.grid_index
        if grid_index is None:
            grid_index = self.estimator.search_grid.nearest_index(
                estimate.azimuth_deg, estimate.elevation_deg
            )
        candidate_gains = self._candidate_matrix[:, grid_index]
        sector_id = int(self.candidate_sector_ids[int(candidate_gains.argmax())])
        if _quality.quality_context() is not None:
            _quality.record_selection_margin(candidate_gains, estimate.n_probes_used)
        self._last_selection = sector_id
        return SelectionResult(sector_id=sector_id, estimate=estimate)

    # ------------------------------------------------------------------
    # Batched throughput path.
    # ------------------------------------------------------------------

    def _fallback_from_arrays(
        self, sub_ids: np.ndarray, sub_snr: np.ndarray
    ) -> SelectionResult:
        """Array twin of :meth:`_fallback` with Python ``max`` semantics.

        ``max(..., key=snr)`` keeps the first element and replaces it
        only on a strictly greater key, so ties — and NaN keys, which
        never compare greater — resolve to the earliest candidate.  A
        plain ``np.argmax`` would resolve NaN differently, so the loop
        is explicit.
        """
        _obs.inc("selector_fallbacks_total")
        if sub_ids.size:
            best = 0
            for index in range(1, sub_ids.size):
                if sub_snr[index] > sub_snr[best]:
                    best = index
            sector_id = int(sub_ids[best])
            self._last_selection = sector_id
            return SelectionResult(sector_id=sector_id, fallback=True)
        return SelectionResult(sector_id=self._last_selection, fallback=True)

    def select_batch(
        self,
        sector_ids: np.ndarray,
        snr_db: np.ndarray,
        rssi_dbm: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> List[SelectionResult]:
        """Run :meth:`select` over a padded batch of sweeps at once.

        Row ``t`` holds one sweep's probes in slot order (``mask[t]``
        flags slots carrying a report; padded slots may hold anything).
        ``snr_db`` is always required — the fallback ranks probes by
        SNR regardless of the fusion mode — while ``rssi_dbm`` is only
        needed when the estimator's fusion uses it.  Rows are processed
        in order and update the selection state sequentially, so the
        result list is element-for-element identical to calling
        :meth:`select` on each sweep, including fallback decisions and
        the Eq. 4 lookup.

        Raises:
            ValueError: a row had enough known-sector probes to attempt
                estimation but fewer than two finite ones — exactly the
                case where the scalar path raises mid-sequence.
        """
        ids = np.asarray(sector_ids)
        if ids.ndim != 2:
            raise ValueError("sector_ids must be 2-D (trials x probe slots)")
        _obs.inc("selector_calls_total", path="batched")
        _obs.inc("selector_batch_rows_total", ids.shape[0])
        ids = ids.astype(np.intp, copy=False)
        snr = np.asarray(snr_db, dtype=float)
        if snr.shape != ids.shape:
            raise ValueError(
                f"snr_db shape {snr.shape} does not match sector_ids shape {ids.shape}"
            )
        if mask is None:
            valid = np.ones(ids.shape, dtype=bool)
        else:
            valid = np.asarray(mask, dtype=bool)
            if valid.shape != ids.shape:
                raise ValueError(
                    f"mask shape {valid.shape} does not match sector_ids "
                    f"shape {ids.shape}"
                )

        lookup = self.estimator._row_lookup
        in_range = (ids >= 0) & (ids < lookup.size)
        known = np.zeros(ids.shape, dtype=bool)
        known[in_range] = lookup[ids[in_range]] >= 0
        usable = valid & known
        counts = usable.sum(axis=1)

        estimate_rows = np.flatnonzero(counts >= self.min_probes)
        estimates: List[Optional[object]] = []
        if estimate_rows.size:
            rssi_sub = (
                None
                if rssi_dbm is None
                else np.asarray(rssi_dbm, dtype=float)[estimate_rows]
            )
            estimates = self.estimator.estimate_batch(
                ids[estimate_rows],
                snr_db=snr[estimate_rows],
                rssi_dbm=rssi_sub,
                mask=usable[estimate_rows],
            )
        estimate_of_row = dict(zip(estimate_rows.tolist(), estimates))

        quality_on = _quality.quality_context() is not None
        results: List[SelectionResult] = []
        for trial in range(ids.shape[0]):
            row_usable = usable[trial]
            if counts[trial] < self.min_probes:
                results.append(
                    self._fallback_from_arrays(ids[trial, row_usable], snr[trial, row_usable])
                )
                continue
            estimate = estimate_of_row[trial]
            if estimate is None:
                raise ValueError(
                    f"trial {trial}: need at least two finite probe "
                    f"measurements to correlate"
                )
            if estimate.correlation < self.fallback_correlation:
                results.append(
                    self._fallback_from_arrays(ids[trial, row_usable], snr[trial, row_usable])
                )
                continue
            grid_index = estimate.grid_index
            if grid_index is None:
                grid_index = self.estimator.search_grid.nearest_index(
                    estimate.azimuth_deg, estimate.elevation_deg
                )
            candidate_gains = self._candidate_matrix[:, grid_index]
            sector_id = int(self.candidate_sector_ids[int(candidate_gains.argmax())])
            if quality_on:
                _quality.record_selection_margin(
                    candidate_gains, estimate.n_probes_used
                )
            self._last_selection = sector_id
            results.append(SelectionResult(sector_id=sector_id, estimate=estimate))
        return results

    # ------------------------------------------------------------------
    # Fused single-pass path (correlate → finite-argmax → Eq. 4).
    # ------------------------------------------------------------------

    def _fused_arrays(
        self,
        sector_ids: np.ndarray,
        snr_db: np.ndarray,
        rssi_dbm: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> _FusedBatch:
        """Stateless array half of :meth:`select_fused_batch`.

        Validates the padded batch, runs the estimator's fused
        correlate→argmax pass, and resolves Eq. 4 for every estimated
        row in one vectorized column gather.  Touches no selector state
        (``_last_selection`` is only read/written by the builder), so
        several blocks' batches may be stacked row-wise and evaluated
        in a single call.
        """
        ids = np.asarray(sector_ids)
        if ids.ndim != 2:
            raise ValueError("sector_ids must be 2-D (trials x probe slots)")
        _obs.inc("selector_calls_total", path="fused")
        _obs.inc("selector_batch_rows_total", ids.shape[0])
        ids = ids.astype(np.intp, copy=False)
        snr = np.asarray(snr_db, dtype=float)
        if snr.shape != ids.shape:
            raise ValueError(
                f"snr_db shape {snr.shape} does not match sector_ids shape {ids.shape}"
            )
        if mask is None:
            valid = np.ones(ids.shape, dtype=bool)
        else:
            valid = np.asarray(mask, dtype=bool)
            if valid.shape != ids.shape:
                raise ValueError(
                    f"mask shape {valid.shape} does not match sector_ids "
                    f"shape {ids.shape}"
                )

        lookup = self.estimator._row_lookup
        in_range = (ids >= 0) & (ids < lookup.size)
        known = np.zeros(ids.shape, dtype=bool)
        known[in_range] = lookup[ids[in_range]] >= 0
        sel_usable = valid & known
        counts = sel_usable.sum(axis=1)
        need = counts >= self.min_probes

        # The estimator only sees rows that met min_probes (matching
        # select_batch's estimate_rows subset); zeroing short rows'
        # masks instead of slicing keeps the batch layout intact for
        # the single-nonzero compaction.
        estimate_mask = sel_usable if bool(need.all()) else sel_usable & need[:, None]
        n_probes, best_index, best_corr = self.estimator.estimate_fused_arrays(
            ids, snr_db=snr, rssi_dbm=rssi_dbm, mask=estimate_mask
        )

        # Eq. 4, vectorized: per gathered column, argmax over candidate
        # gains — identical to the scalar per-row 1-D argmax.
        sector_of = np.full(ids.shape[0], -1, dtype=np.intp)
        have = best_index >= 0
        if have.any():
            candidate_gains = self._candidate_matrix[:, best_index[have]]
            sector_of[have] = self._candidate_ids_array[
                np.argmax(candidate_gains, axis=0)
            ]
        return _FusedBatch(
            ids, snr, sel_usable, need, n_probes, best_index, best_corr, sector_of
        )

    def _fused_build(self, fused: _FusedBatch) -> List[SelectionResult]:
        """Stateful result-building half of :meth:`select_fused_batch`.

        Rows are visited in order, threading ``_last_selection`` and
        resolving fallbacks exactly like :meth:`select_batch`'s result
        loop — the only part of the fused path that must run per block
        in submission order.
        """
        results: List[SelectionResult] = []
        index_to_angles = self.estimator.search_grid.index_to_angles
        fallback_correlation = self.fallback_correlation
        quality_on = _quality.quality_context() is not None
        ids = fused.ids
        snr = fused.snr
        for trial in range(ids.shape[0]):
            if not fused.need[trial]:
                row_usable = fused.sel_usable[trial]
                results.append(
                    self._fallback_from_arrays(ids[trial, row_usable], snr[trial, row_usable])
                )
                continue
            if fused.best_index[trial] < 0:
                raise ValueError(
                    f"trial {trial}: need at least two finite probe "
                    f"measurements to correlate"
                )
            correlation = float(fused.best_corr[trial])
            if correlation < fallback_correlation:
                row_usable = fused.sel_usable[trial]
                results.append(
                    self._fallback_from_arrays(ids[trial, row_usable], snr[trial, row_usable])
                )
                continue
            grid_index = int(fused.best_index[trial])
            azimuth, elevation = index_to_angles(grid_index)
            estimate = AngleEstimate(
                azimuth_deg=azimuth,
                elevation_deg=elevation,
                correlation=correlation,
                n_probes_used=int(fused.n_probes[trial]),
                grid_index=grid_index,
            )
            if quality_on:
                # Re-gather the Eq. 4 column (the stateless half does
                # not retain it) so the margin is recorded only for
                # rows that actually selected — the same rows
                # select_batch records.
                _quality.record_selection_margin(
                    self._candidate_matrix[:, grid_index],
                    estimate.n_probes_used,
                )
            sector_id = int(fused.sector_of[trial])
            self._last_selection = sector_id
            results.append(SelectionResult(sector_id=sector_id, estimate=estimate))
        return results

    def select_fused_batch(
        self,
        sector_ids: np.ndarray,
        snr_db: np.ndarray,
        rssi_dbm: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> List[SelectionResult]:
        """Single-pass twin of :meth:`select_batch` (correlate → argmax → Eq. 4).

        Same contract and **bit-for-bit** the same results as
        :meth:`select_batch`; the difference is purely mechanical — one
        ``nonzero`` compacts the whole batch up front, each row goes
        straight from its correlation vector to its finite-aware argmax
        (no per-row fancy indexing, no full correlation-map
        materialization), and the Eq. 4 candidate argmax runs as one
        vectorized column gather.  Raises the same ``ValueError`` as
        :meth:`select_batch` when a row had enough known-sector probes
        to attempt estimation but fewer than two finite ones.
        """
        return self._fused_build(self._fused_arrays(sector_ids, snr_db, rssi_dbm, mask))

    def select_fused_stacked(
        self, parts: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]
    ) -> List[List[SelectionResult]]:
        """Fused evaluation of several independent batches in one pass.

        ``parts`` is a sequence of ``(sector_ids, snr_db, rssi_dbm,
        mask)`` tuples with equal probe widths.  Bit-for-bit equivalent
        to ``reset(); select_fused_batch(*part)`` per part: the
        stateless half (:meth:`_fused_arrays`) is row-independent, so
        the stacked rows produce exactly the per-part values, and the
        stateful builder then runs per part against freshly reset
        selection state.  Stacking amortizes the ~25 fixed-cost numpy
        dispatches of the stateless half over every part — the lever
        that makes chunked pool dispatch cheaper than per-block local
        evaluation on small blocks.

        Raises on width mismatch or any per-row validation error;
        callers degrade to per-part evaluation (which reproduces the
        exact per-part error behavior).
        """
        counts = [part[0].shape[0] for part in parts]
        fused = self._fused_arrays(
            np.concatenate([part[0] for part in parts]),
            np.concatenate([part[1] for part in parts]),
            np.concatenate([part[2] for part in parts]),
            np.concatenate([part[3] for part in parts]),
        )
        results: List[List[SelectionResult]] = []
        start = 0
        for count in counts:
            end = start + count
            self.reset()
            results.append(
                self._fused_build(
                    _FusedBatch(*(field[start:end] for field in fused))
                )
            )
            start = end
        return results
