"""Compressive sector selection (the paper's core contribution, §2.2).

Two steps per sweep:

1. Probe ``M`` of the ``N`` available sectors and estimate the signal's
   path direction by correlating the received signal-strength vector
   against the measured 3D patterns (Eqs. 2, 3, 5).
2. Pick, among **all** ``N`` sectors, the one whose measured pattern
   has the highest gain at the estimated direction (Eq. 4).

``N`` can therefore be much larger than ``M`` — the selection quality
is bounded by the pattern knowledge, not the probe count.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import obs as _obs
from ..geometry.grid import AngularGrid
from ..measurement.patterns import PatternTable
from .estimator import AngleEstimator
from .measurements import ProbeMeasurement
from .selector import SelectionResult

__all__ = ["CompressiveSectorSelector"]


class CompressiveSectorSelector:
    """Selects sectors from compressive probes and measured patterns."""

    def __init__(
        self,
        pattern_table: PatternTable,
        candidate_sector_ids: Optional[Sequence[int]] = None,
        search_grid: Optional[AngularGrid] = None,
        fusion: str = "product",
        domain: str = "linear",
        initial_sector_id: int = 1,
        min_probes: int = 2,
        fallback_correlation: float = 0.0,
    ):
        """
        Args:
            pattern_table: measured patterns of every available sector.
            candidate_sector_ids: the ``N`` sectors eligible for the
                final selection (default: every table sector except the
                quasi-omni RX sector 0, i.e. all TX sectors).
            search_grid: angular grid for the Eq. 3 argmax.
            fusion: correlation fusion mode — ``"product"`` applies the
                Eq. 5 SNR×RSSI robustification (§5); ``"snr"`` and
                ``"rssi"`` use a single map (for the ablation study).
            domain: correlation domain, ``"linear"`` or ``"db"``.
            initial_sector_id: selection before any sweep succeeds.
            min_probes: below this many usable reports the selector
                falls back (argmax of what it has, else last choice).
            fallback_correlation: when the Eq. 3/5 peak correlation
                drops below this value the measured patterns clearly no
                longer describe the channel (e.g. a blocked LOS), and
                the selector falls back to the plain argmax of the
                probes.  0 (default) disables the fallback — the
                paper's protocol always trusts the patterns.
        """
        if candidate_sector_ids is None:
            candidate_sector_ids = [
                sector_id for sector_id in pattern_table.sector_ids if sector_id != 0
            ]
        unknown = [s for s in candidate_sector_ids if s not in pattern_table.sector_ids]
        if unknown:
            raise ValueError(f"candidate sectors without measured patterns: {unknown}")
        if min_probes < 2:
            raise ValueError("correlation needs at least two probes")

        self.pattern_table = pattern_table
        self.candidate_sector_ids = list(candidate_sector_ids)
        self.estimator = AngleEstimator(
            pattern_table, search_grid=search_grid, domain=domain, fusion=fusion
        )
        if not 0.0 <= fallback_correlation <= 1.0:
            raise ValueError("fallback correlation must be in [0, 1]")
        self.min_probes = min_probes
        self.fallback_correlation = fallback_correlation
        self.initial_sector_id = initial_sector_id
        self._last_selection = initial_sector_id
        # Candidate gains on the search grid, for the Eq. 4 lookup.
        self._candidate_matrix = pattern_table.sample_matrix(
            self.estimator.search_grid, self.candidate_sector_ids
        )

    @property
    def last_selection(self) -> int:
        return self._last_selection

    def reset(self) -> None:
        """Forget the selection history (as if freshly constructed).

        Experiments that evaluate many independent recordings reuse one
        selector (construction samples two full grid matrices) and call
        this between recordings instead of rebuilding it.
        """
        self._last_selection = self.initial_sector_id

    @property
    def n_candidates(self) -> int:
        return len(self.candidate_sector_ids)

    def best_sector_at(self, azimuth_deg: float, elevation_deg: float) -> int:
        """Eq. 4: the candidate with maximum measured gain there."""
        gains = self.pattern_table.vector(
            azimuth_deg, elevation_deg, self.candidate_sector_ids
        )
        return int(self.candidate_sector_ids[int(np.argmax(gains))])

    def _fallback(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        _obs.inc("selector_fallbacks_total")
        if measurements:
            best = max(measurements, key=lambda m: m.snr_db)
            self._last_selection = best.sector_id
            return SelectionResult(sector_id=best.sector_id, fallback=True)
        return SelectionResult(sector_id=self._last_selection, fallback=True)

    def select(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        """Run both steps on one sweep's measurements."""
        _obs.inc("selector_calls_total", path="scalar")
        usable = [m for m in measurements if self.estimator.has_sector(m.sector_id)]
        if len(usable) < self.min_probes:
            return self._fallback(usable)
        estimate = self.estimator.estimate(usable)
        if estimate.correlation < self.fallback_correlation:
            return self._fallback(usable)
        # Eq. 4 via the precomputed grid matrix: column at the argmax
        # grid point, maximized over candidates.  The estimate carries
        # its own flat grid index (same search grid the candidate
        # matrix was sampled on); estimators that interpolate off-grid
        # leave it None and pay the nearest-point lookup.
        grid_index = estimate.grid_index
        if grid_index is None:
            grid_index = self.estimator.search_grid.nearest_index(
                estimate.azimuth_deg, estimate.elevation_deg
            )
        candidate_gains = self._candidate_matrix[:, grid_index]
        sector_id = int(self.candidate_sector_ids[int(candidate_gains.argmax())])
        self._last_selection = sector_id
        return SelectionResult(sector_id=sector_id, estimate=estimate)

    # ------------------------------------------------------------------
    # Batched throughput path.
    # ------------------------------------------------------------------

    def _fallback_from_arrays(
        self, sub_ids: np.ndarray, sub_snr: np.ndarray
    ) -> SelectionResult:
        """Array twin of :meth:`_fallback` with Python ``max`` semantics.

        ``max(..., key=snr)`` keeps the first element and replaces it
        only on a strictly greater key, so ties — and NaN keys, which
        never compare greater — resolve to the earliest candidate.  A
        plain ``np.argmax`` would resolve NaN differently, so the loop
        is explicit.
        """
        _obs.inc("selector_fallbacks_total")
        if sub_ids.size:
            best = 0
            for index in range(1, sub_ids.size):
                if sub_snr[index] > sub_snr[best]:
                    best = index
            sector_id = int(sub_ids[best])
            self._last_selection = sector_id
            return SelectionResult(sector_id=sector_id, fallback=True)
        return SelectionResult(sector_id=self._last_selection, fallback=True)

    def select_batch(
        self,
        sector_ids: np.ndarray,
        snr_db: np.ndarray,
        rssi_dbm: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> List[SelectionResult]:
        """Run :meth:`select` over a padded batch of sweeps at once.

        Row ``t`` holds one sweep's probes in slot order (``mask[t]``
        flags slots carrying a report; padded slots may hold anything).
        ``snr_db`` is always required — the fallback ranks probes by
        SNR regardless of the fusion mode — while ``rssi_dbm`` is only
        needed when the estimator's fusion uses it.  Rows are processed
        in order and update the selection state sequentially, so the
        result list is element-for-element identical to calling
        :meth:`select` on each sweep, including fallback decisions and
        the Eq. 4 lookup.

        Raises:
            ValueError: a row had enough known-sector probes to attempt
                estimation but fewer than two finite ones — exactly the
                case where the scalar path raises mid-sequence.
        """
        ids = np.asarray(sector_ids)
        if ids.ndim != 2:
            raise ValueError("sector_ids must be 2-D (trials x probe slots)")
        _obs.inc("selector_calls_total", path="batched")
        _obs.inc("selector_batch_rows_total", ids.shape[0])
        ids = ids.astype(np.intp, copy=False)
        snr = np.asarray(snr_db, dtype=float)
        if snr.shape != ids.shape:
            raise ValueError(
                f"snr_db shape {snr.shape} does not match sector_ids shape {ids.shape}"
            )
        if mask is None:
            valid = np.ones(ids.shape, dtype=bool)
        else:
            valid = np.asarray(mask, dtype=bool)
            if valid.shape != ids.shape:
                raise ValueError(
                    f"mask shape {valid.shape} does not match sector_ids "
                    f"shape {ids.shape}"
                )

        lookup = self.estimator._row_lookup
        in_range = (ids >= 0) & (ids < lookup.size)
        known = np.zeros(ids.shape, dtype=bool)
        known[in_range] = lookup[ids[in_range]] >= 0
        usable = valid & known
        counts = usable.sum(axis=1)

        estimate_rows = np.flatnonzero(counts >= self.min_probes)
        estimates: List[Optional[object]] = []
        if estimate_rows.size:
            rssi_sub = (
                None
                if rssi_dbm is None
                else np.asarray(rssi_dbm, dtype=float)[estimate_rows]
            )
            estimates = self.estimator.estimate_batch(
                ids[estimate_rows],
                snr_db=snr[estimate_rows],
                rssi_dbm=rssi_sub,
                mask=usable[estimate_rows],
            )
        estimate_of_row = dict(zip(estimate_rows.tolist(), estimates))

        results: List[SelectionResult] = []
        for trial in range(ids.shape[0]):
            row_usable = usable[trial]
            if counts[trial] < self.min_probes:
                results.append(
                    self._fallback_from_arrays(ids[trial, row_usable], snr[trial, row_usable])
                )
                continue
            estimate = estimate_of_row[trial]
            if estimate is None:
                raise ValueError(
                    f"trial {trial}: need at least two finite probe "
                    f"measurements to correlate"
                )
            if estimate.correlation < self.fallback_correlation:
                results.append(
                    self._fallback_from_arrays(ids[trial, row_usable], snr[trial, row_usable])
                )
                continue
            grid_index = estimate.grid_index
            if grid_index is None:
                grid_index = self.estimator.search_grid.nearest_index(
                    estimate.azimuth_deg, estimate.elevation_deg
                )
            candidate_gains = self._candidate_matrix[:, grid_index]
            sector_id = int(self.candidate_sector_ids[int(candidate_gains.argmax())])
            self._last_selection = sector_id
            results.append(SelectionResult(sector_id=sector_id, estimate=estimate))
        return results
