"""Command-line interface: regenerate any paper artefact from a shell.

The original release shipped shell tools around the router; this CLI
is their simulator-side counterpart::

    repro-bench table1              # Table 1 schedule capture
    repro-bench patterns out.npz    # chamber campaign -> .npz tables
    repro-bench fig7 [--paper]      # estimation-error experiment
    repro-bench fig8 / fig9 / fig10 / fig11
    repro-bench summary             # the §6.5 headline numbers
    repro-bench ablations           # all design-choice ablations
    repro-bench extensions          # blockage / dense / fine-codebook
    repro-bench artifacts verify    # shipped-data integrity check
    repro-bench artifacts rebuild   # regenerate damaged data in place
    repro-bench artifacts info      # manifest + cache status
    repro-bench perf                # hot-kernel timings -> BENCH_core.json
    repro-bench perf --check        # fail on >2x latency regression
    repro-bench run --list          # registered scenarios
    repro-bench run fig9 --jobs 4   # any scenario, by name ...
    repro-bench run spec.json       # ... or from a pinned spec file
    repro-bench run fig7 --trace t.jsonl   # record a span trace
    repro-bench run fig7 --profile p.pstats  # cProfile the serial path
    repro-bench run fig7 --profile-sampling p.collapsed  # sampling profiler
    repro-bench run fig7 --trace t.jsonl --quality  # quality telemetry
    repro-bench report t.jsonl      # per-stage latency breakdown
    repro-bench diff a.json b.json  # rank what changed between two runs
    repro-bench serve --port 8780   # HTTP spec-submission service
    repro-bench load                # service saturation load harness
    repro-bench runs gc             # sweep orphaned journals/shm
    repro-bench chaos               # crash-recovery chaos campaign

``--paper`` switches experiments from the fast default profile to the
paper's full resolutions (minutes instead of seconds).  Every
subcommand takes ``--log-level`` (or the ``REPRO_LOG_LEVEL``
environment variable) to surface the library's diagnostic logging.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def _print_rows(rows: List[str]) -> None:
    print("\n".join(rows))


def _emit(result, args: argparse.Namespace) -> None:
    """Print the rows and honor --json archiving when requested."""
    _print_rows(result.format_rows())
    json_path = getattr(args, "json", None)
    if json_path:
        from .experiments.io import dump_result_json

        dump_result_json(result, json_path)
        print(f"archived result JSON to {json_path}")


def _cmd_table1(args: argparse.Namespace) -> None:
    from .experiments import Table1Config, run_table1

    result = run_table1(Table1Config(seed=args.seed))
    _emit(result, args)


def _cmd_patterns(args: argparse.Namespace) -> None:
    from .measurement import PatternMeasurementCampaign, measure_3d_patterns
    from .phased_array import PhasedArray, talon_codebook

    rng = np.random.default_rng(args.seed)
    antenna = PhasedArray.talon(np.random.default_rng(args.seed + 1))
    campaign = PatternMeasurementCampaign(antenna, talon_codebook(antenna))
    azimuth_step = 1.8 if args.paper else 3.6
    elevation_step = 3.6 if args.paper else 7.2
    table = measure_3d_patterns(
        campaign, rng, azimuth_step_deg=azimuth_step, elevation_step_deg=elevation_step
    )
    table.save(args.output)
    print(
        f"saved {table.n_sectors} sector patterns "
        f"({table.grid.n_elevation}x{table.grid.n_azimuth} grid) to {args.output}"
    )


def _cmd_fig7(args: argparse.Namespace) -> None:
    from .experiments import Fig7Config, run_fig7

    if args.paper:
        config = Fig7Config(
            seed=args.seed,
            lab_azimuth_step_deg=2.25,
            lab_elevation_step_deg=2.0,
            conference_azimuth_step_deg=1.3,
            n_sweeps=3,
        )
    else:
        config = Fig7Config(seed=args.seed)
    _emit(run_fig7(config), args)


def _cmd_fig8(args: argparse.Namespace) -> None:
    from .experiments import Fig8Config, run_fig8

    n_sweeps = 60 if args.paper else 25
    step = 2.5 if args.paper else 7.5
    config = Fig8Config(seed=args.seed, azimuth_step_deg=step, n_sweeps=n_sweeps)
    _emit(run_fig8(config), args)


def _cmd_fig9(args: argparse.Namespace) -> None:
    from .experiments import Fig9Config, run_fig9

    n_sweeps = 40 if args.paper else 15
    step = 2.5 if args.paper else 7.5
    config = Fig9Config(seed=args.seed, azimuth_step_deg=step, n_sweeps=n_sweeps)
    _emit(run_fig9(config), args)


def _cmd_fig10(args: argparse.Namespace) -> None:
    from .experiments import Fig10Config, run_fig10

    _emit(run_fig10(Fig10Config()), args)


def _cmd_fig11(args: argparse.Namespace) -> None:
    from .experiments import Fig11Config, run_fig11

    config = Fig11Config(seed=args.seed, n_intervals=120 if args.paper else 40)
    _emit(run_fig11(config), args)


def _cmd_summary(args: argparse.Namespace) -> None:
    from .experiments import run_summary

    _emit(run_summary(), args)


def _cmd_ablations(args: argparse.Namespace) -> None:
    from .experiments import (
        run_3d_ablation,
        run_adaptive_ablation,
        run_fusion_ablation,
        run_oob_prior_ablation,
        run_pattern_ablation,
        run_probe_set_ablation,
        run_random_beam_ablation,
        run_refinement_ablation,
    )

    for runner in (
        run_fusion_ablation,
        run_pattern_ablation,
        run_probe_set_ablation,
        run_3d_ablation,
        run_random_beam_ablation,
        run_adaptive_ablation,
        run_oob_prior_ablation,
        run_refinement_ablation,
    ):
        _print_rows(runner().format_rows())
        print()


def _cmd_extensions(args: argparse.Namespace) -> None:
    from .experiments import (
        run_blockage_recovery,
        run_dense_deployment,
        run_pattern_transfer,
    )
    from .experiments.fine import run_fine_codebook

    for runner in (
        run_blockage_recovery,
        run_dense_deployment,
        run_fine_codebook,
        run_pattern_transfer,
    ):
        _print_rows(runner().format_rows())
        print()


def _cmd_artifacts(args: argparse.Namespace) -> int:
    """Verify, rebuild or describe the shipped data artifacts."""
    from .measurement import artifacts as registry
    from .measurement.errors import ArtifactError

    try:
        return _run_artifacts(args, registry)
    except ArtifactError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _run_artifacts(args: argparse.Namespace, registry) -> int:
    names = [args.name] if args.name else sorted(registry.load_manifest()["artifacts"])

    if args.action == "verify":
        failures = 0
        for name in names:
            status = registry.verify_artifact(name)
            detail = ""
            if status.status == "digest-mismatch":
                detail = f" (expected {status.expected_sha256[:12]}…, got {status.actual_sha256[:12]}…)"
            print(f"{status.name}: {status.status}{detail}")
            failures += 0 if status.ok else 1
        if failures:
            print(
                f"{failures} artifact(s) failed verification; run "
                f"'repro-bench artifacts rebuild' to regenerate them"
            )
        return 1 if failures else 0

    if args.action == "rebuild":
        for name in names:
            path = registry.rebuild_artifact(name)
            print(f"{name}: rebuilt at {path} (manifest digest verified)")
        return 0

    # info
    for name in names:
        entry = registry.manifest_entry(name)
        status = registry.verify_artifact(name)
        spec = registry.ARTIFACTS.get(name)
        cached = registry.cached_artifact_path(name)
        print(f"{name}:")
        print(f"  status: {status.status}")
        print(f"  path: {status.path}")
        print(f"  sha256: {entry['sha256']}")
        for field in ("size_bytes", "pipeline"):
            if field in entry:
                print(f"  {field}: {entry[field]}")
        if spec is not None:
            print(f"  description: {spec.description}")
        print(f"  cache: {cached} ({'present' if cached.is_file() else 'absent'})")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    """Run any registered scenario (by name or from a spec JSON file)."""
    from pathlib import Path

    from .runtime import (
        FaultPlan,
        RetryExhaustedError,
        RetryPolicy,
        RunAbortedError,
        ScenarioRunner,
        ScenarioSpec,
        get_scenario,
        scenario_spec,
    )
    from .runtime.registry import available_scenarios

    if args.list:
        for name in available_scenarios():
            print(f"{name:22s} {get_scenario(name).description}")
        return 0
    if args.target is None:
        print("error: provide a scenario name or spec JSON path (or --list)",
              file=sys.stderr)
        return 2

    if args.target.endswith(".json") or Path(args.target).is_file():
        spec = ScenarioSpec.load(args.target)
    else:
        spec = scenario_spec(args.target)
    spec = spec.with_seed(args.seed)

    faults = None
    if args.inject:
        try:
            faults = FaultPlan.parse(args.inject, hang_s=args.hang_s)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    retry = RetryPolicy(
        max_attempts=args.max_attempts,
        backoff_base_s=args.backoff,
        timeout_s=args.timeout,
        seed=spec.seed,
    )
    checkpoint = args.checkpoint if args.checkpoint else (True if args.resume else None)
    session = None
    if args.trace or args.quality:
        from .obs import ObsSession

        # --quality implies a session even without --trace: the
        # telemetry lands in the manifest's metric snapshot.
        session = ObsSession(trace_path=args.trace, quality=args.quality)

    profiler = None
    if args.profile:
        import cProfile

        if args.jobs != 1:
            # cProfile instruments this process only; pool workers
            # would run unprofiled and the numbers would lie.
            print("profile: forcing --jobs 1 (cProfile cannot follow pool workers)")
            args.jobs = 1
        profiler = cProfile.Profile()
        profiler.enable()
    sampling = None
    if args.profile_sampling:
        # Unlike cProfile, the sampling profiler is fork-aware (worker
        # aggregates ship home with the obs payloads), so --jobs stays
        # untouched.
        from .obs import profile as sampling

        sampling.start_profiling()
    try:
        with ScenarioRunner(
            jobs=args.jobs,
            retry=retry,
            faults=faults,
            checkpoint=checkpoint,
            resume=args.resume,
            obs=session,
        ) as runner:
            outcome = runner.run(spec, deadline_s=args.deadline)
    except RunAbortedError as error:
        # BaseException on purpose (it must pierce the supervision
        # layers), so it needs its own clause to exit cleanly.
        print(
            f"error: {error.reason}: spec={spec.digest()[:16]}",
            file=sys.stderr,
        )
        return 1
    except RetryExhaustedError as error:
        print(
            f"error: retries exhausted: spec={spec.digest()[:16]} "
            f"policy={error.label} block={error.block_index} "
            f"attempts={error.attempts} last={type(error.cause).__name__}",
            file=sys.stderr,
        )
        return 1
    except FileExistsError as error:
        # --checkpoint without --resume on a journal this run could
        # have resumed: refuse rather than destroy it.
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if profiler is not None:
            profiler.disable()
        # Stop after the manifest is finalized (the hotspot summary
        # embeds there) but on every exit path, so the itimer never
        # outlives the command.
        sampled_profile = (
            sampling.stop_profiling() if sampling is not None else None
        )
    result = outcome.result
    if hasattr(result, "format_rows"):
        _print_rows(result.format_rows())
    else:
        print(result)
    _print_rows(outcome.manifest.format_rows())
    if args.trace:
        print(f"wrote trace to {args.trace} (inspect with 'repro-bench report')")
    if profiler is not None:
        import pstats
        from pathlib import Path as _Path

        profiler.dump_stats(args.profile)
        entries = sorted(
            pstats.Stats(profiler).stats.items(),
            key=lambda item: item[1][3],  # cumulative seconds
            reverse=True,
        )
        top = "; ".join(
            f"{func} {_Path(filename).name}:{lineno} {cumulative:.2f}s"
            for (filename, lineno, func), (_, _, _, cumulative, _) in entries[:10]
        )
        print(f"wrote profile to {args.profile} (top cumulative: {top})")
    if sampled_profile is not None:
        sampling.write_collapsed(
            args.profile_sampling,
            sampled_profile,
            header={"scenario": spec.scenario, "spec_digest": spec.digest(),
                    "seed": spec.seed, "jobs": args.jobs},
        )
        summary = sampling.profile_summary(sampled_profile)
        leaders = "; ".join(
            f"{entry['function']} {entry['self_pct']:.0f}%"
            for entry in summary["hotspots"][:5]
        )
        print(
            f"wrote sampled profile to {args.profile_sampling} "
            f"({summary['samples']} samples; top self-time: {leaders})"
        )
    if args.manifest:
        outcome.manifest.save(args.manifest)
        print(f"wrote run manifest to {args.manifest}")
    if args.json:
        from .experiments.io import dump_result_json

        dump_result_json(result, args.json)
        print(f"archived result JSON to {args.json}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render the latency breakdown of a traced run (trace or manifest)."""
    from .obs.report import format_report_rows, load_report_target

    try:
        payload = load_report_target(args.target)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _print_rows(format_report_rows(payload, top=args.top))
    if args.metrics:
        snapshot = payload.get("metrics")
        if snapshot:
            from .obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            registry.merge(snapshot)
            print()
            print(registry.render_prometheus(), end="")
        else:
            print(
                "(no metric snapshot in this target — metrics live in the "
                "run manifest of a traced run, not in the trace file)"
            )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    """Attribute what changed between two runs (traces, manifests, BENCH points)."""
    from .obs.diff import diff_targets, format_diff_rows, load_diff_target

    try:
        before = load_diff_target(args.target_a)
        after = load_diff_target(args.target_b)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    diff = diff_targets(before, after, noise_pct=args.noise_pct)
    _print_rows(format_diff_rows(diff, top=args.top))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve ScenarioSpec submissions over HTTP (see DESIGN.md §11)."""
    import asyncio

    from .service.server import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        jobs=args.jobs,
        durable=not args.no_durable,
        checkpoint_dir=args.checkpoint_dir,
        state_dir=args.state_dir,
        drain_timeout_s=args.drain_timeout,
        sweep_shm=args.sweep_shm,
        history_limit=args.history_limit,
        trace_path=args.trace,
        trace_max_mb=args.trace_max_mb,
        profile_path=args.profile,
    )
    try:
        asyncio.run(serve(config))
    except KeyboardInterrupt:
        print("service stopped")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    """Operate on durable service state ('gc' sweeps orphans offline)."""
    from pathlib import Path

    from .runtime.checkpoint import journal_header
    from .runtime.shm import sweep_leaked_segments
    from .service.registry import RunRegistry

    if args.state_dir:
        state_dir = Path(args.state_dir)
    else:
        from .measurement.artifacts import cache_dir

        state_dir = cache_dir() / "service"
    if not state_dir.is_dir():
        print(f"error: no state dir at {state_dir}", file=sys.stderr)
        return 2
    registry_path = state_dir / "registry.jsonl"
    referenced = set()
    if registry_path.is_file():
        registry = RunRegistry(registry_path, durable=False)
        try:
            referenced = {
                str(state.get("checkpoint_path", ""))
                for state in registry.replay().values()
            }
        finally:
            registry.close()
    swept = 0
    for path in sorted(state_dir.glob("*.jsonl")):
        if path == registry_path or str(path) in referenced:
            continue
        if journal_header(path) is None:
            continue  # not a checkpoint journal — leave it alone
        path.unlink()
        swept += 1
        print(f"gc: reclaimed orphaned checkpoint journal {path}")
    segments = sweep_leaked_segments() if args.sweep_shm else []
    for segment in segments:
        print(f"gc: reclaimed leaked shm segment {segment}")
    print(f"gc: reclaimed {swept} journal(s), {len(segments)} shm segment(s)")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos campaign against a live serve subprocess (DESIGN.md §14)."""
    import tempfile

    from .runtime.chaos import DEFAULT_EVENTS, ChaosConfig, run_chaos

    if args.events:
        events = tuple(
            part.strip() for part in args.events.split(",") if part.strip()
        )
        unknown = [name for name in events if name not in DEFAULT_EVENTS]
        if unknown:
            print(
                f"error: unknown chaos event(s): {', '.join(unknown)} "
                f"(known: {', '.join(DEFAULT_EVENTS)})",
                file=sys.stderr,
            )
            return 2
    else:
        events = DEFAULT_EVENTS
    state_dir = args.state_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    config = ChaosConfig(
        state_dir=state_dir,
        seed=args.seed,
        events=events,
        workers=args.workers,
        jobs=args.jobs,
        drain_timeout_s=args.drain_timeout,
        gate_recovery_s=args.gate_recovery_s,
    )
    return run_chaos(config, output=args.output, label=args.label)


def _cmd_load(args: argparse.Namespace) -> int:
    """Drive the service to saturation; report and optionally gate on latency."""
    from .service.load import LoadConfig, run_load

    try:
        levels = tuple(int(part) for part in args.levels.split(",") if part.strip())
    except ValueError:
        print(f"error: --levels must be comma-separated integers: {args.levels!r}",
              file=sys.stderr)
        return 2
    if not levels or any(level <= 0 for level in levels):
        print("error: --levels needs at least one positive burst size",
              file=sys.stderr)
        return 2
    config = LoadConfig(
        scenario=args.scenario,
        levels=levels,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        gate_p99_ms=args.gate_p99_ms,
    )
    return run_load(config, output=args.output, label=args.label)


def _cmd_perf(args: argparse.Namespace) -> int:
    """Time the hot kernels and append a BENCH_core.json datapoint."""
    from .perf import run_perf

    return run_perf(
        label=args.label,
        output=args.output,
        check=args.check,
        repeats=args.repeats,
    )


_COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "table1": _cmd_table1,
    "patterns": _cmd_patterns,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "fig11": _cmd_fig11,
    "summary": _cmd_summary,
    "ablations": _cmd_ablations,
    "extensions": _cmd_extensions,
    "artifacts": _cmd_artifacts,
    "perf": _cmd_perf,
}


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the CoNEXT'17 compressive-sector-selection results.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_log_level(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--log-level", default=None, metavar="LEVEL",
            help="logging verbosity (debug|info|warning|error|critical; "
            "default: $REPRO_LOG_LEVEL or warning)",
        )

    for name, handler in _COMMANDS.items():
        sub = subparsers.add_parser(name, help=handler.__doc__)
        add_log_level(sub)
        sub.add_argument("--seed", type=int, default=2017, help="experiment seed")
        sub.add_argument(
            "--paper",
            action="store_true",
            help="use the paper's full resolutions (slow)",
        )
        sub.add_argument(
            "--json", metavar="PATH", help="also archive the result as JSON"
        )
        if name == "patterns":
            sub.add_argument("output", help="output .npz path")
        if name == "artifacts":
            sub.add_argument(
                "action",
                choices=("verify", "rebuild", "info"),
                help="integrity check, deterministic regeneration, or status",
            )
            sub.add_argument(
                "name", nargs="?", help="artifact name (default: every manifest entry)"
            )
        if name == "perf":
            sub.add_argument(
                "--label", default="dev", help="trajectory point label"
            )
            sub.add_argument(
                "--output",
                default="BENCH_core.json",
                help="trajectory file to append to (default: ./BENCH_core.json)",
            )
            sub.add_argument(
                "--check",
                action="store_true",
                help="compare against the committed baseline instead of appending; "
                "exit nonzero on a >2x latency regression",
            )
            sub.add_argument(
                "--repeats", type=int, default=20, help="timing passes per kernel"
            )
        sub.set_defaults(handler=handler)

    # "run" speaks spec language: its --seed must default to None so a
    # spec file's pinned seed survives, hence it skips the common loop.
    run_sub = subparsers.add_parser("run", help=_cmd_run.__doc__)
    add_log_level(run_sub)
    run_sub.add_argument(
        "target", nargs="?", help="registered scenario name or spec JSON path"
    )
    run_sub.add_argument(
        "--list", action="store_true", help="list the registered scenarios"
    )
    run_sub.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's seed (default: keep the spec's own)",
    )
    run_sub.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for batched recording-parallel scenarios",
    )
    run_sub.add_argument(
        "--manifest", metavar="PATH", help="also write the run manifest JSON"
    )
    run_sub.add_argument(
        "--json", metavar="PATH", help="also archive the result as JSON"
    )
    run_sub.add_argument(
        "--max-attempts", type=int, default=3,
        help="supervised attempts per trial block (1 = fail fast)",
    )
    run_sub.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-block wall-clock budget; a hung worker is replaced "
        "and the block retried (pool mode only)",
    )
    run_sub.add_argument(
        "--backoff", type=float, default=0.05, metavar="S",
        help="base backoff before a retry (exponential, seeded jitter)",
    )
    run_sub.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="journal completed blocks to PATH (default with --resume: "
        "a digest-keyed file under the cache dir)",
    )
    run_sub.add_argument(
        "--resume", action="store_true",
        help="restore completed blocks from an existing checkpoint "
        "instead of re-executing them",
    )
    run_sub.add_argument(
        "--inject", action="append", default=[], metavar="FAULT",
        help="inject a deterministic fault: kind@block[,block...][*times] "
        "with kind one of crash|hang|exception|cache-corrupt "
        "(repeatable)",
    )
    run_sub.add_argument(
        "--hang-s", type=float, default=30.0, metavar="S",
        help="how long an injected hang sleeps (pair with --timeout)",
    )
    run_sub.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="wall-clock budget for the whole run; no block attempt is "
        "scheduled past it (exceeded -> exit 1)",
    )
    run_sub.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span trace of the run to PATH (JSONL; inspect "
        "with 'repro-bench report')",
    )
    run_sub.add_argument(
        "--profile", metavar="PATH", default=None,
        help="cProfile the run (forces --jobs 1), write pstats to PATH "
        "and print the top-10 cumulative hotspots",
    )
    run_sub.add_argument(
        "--profile-sampling", metavar="PATH", default=None,
        help="continuously sample stacks (SIGPROF, ~200 Hz CPU time) "
        "across all threads and pool workers; write a collapsed-stack "
        "flamegraph file to PATH (works at any --jobs)",
    )
    run_sub.add_argument(
        "--quality", action="store_true",
        help="record estimation-quality telemetry (correlation peak "
        "ratios, selection margins, designer diagnostics) into the "
        "run's metric snapshot",
    )
    run_sub.set_defaults(handler=_cmd_run)

    report_sub = subparsers.add_parser("report", help=_cmd_report.__doc__)
    add_log_level(report_sub)
    report_sub.add_argument(
        "target", help="a trace JSONL (run --trace) or a traced run-manifest JSON"
    )
    report_sub.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="how many slowest blocks to list (default: 5)",
    )
    report_sub.add_argument(
        "--metrics", action="store_true",
        help="also print the metric snapshot in Prometheus text format "
        "(manifest targets only)",
    )
    report_sub.set_defaults(handler=_cmd_report)

    diff_sub = subparsers.add_parser("diff", help=_cmd_diff.__doc__)
    add_log_level(diff_sub)
    diff_sub.add_argument(
        "target_a",
        help="baseline: trace JSONL, traced manifest, or BENCH file "
        "(address a point as file.json#label or file.json#index; "
        "bare path = last point)",
    )
    diff_sub.add_argument(
        "target_b", help="candidate: same target grammar as the baseline"
    )
    diff_sub.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows per section in the attribution table (default: 10)",
    )
    diff_sub.add_argument(
        "--noise-pct", type=float, default=None, metavar="PCT",
        help="significance threshold override (default: the widest "
        "measured *_noise_pct on either side, floor 5%%)",
    )
    diff_sub.set_defaults(handler=_cmd_diff)

    serve_sub = subparsers.add_parser("serve", help=_cmd_serve.__doc__)
    add_log_level(serve_sub)
    serve_sub.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve_sub.add_argument(
        "--port", type=int, default=8780,
        help="TCP port (0 = pick an ephemeral port and print it)",
    )
    serve_sub.add_argument(
        "--workers", type=int, default=2,
        help="scenario worker threads (each reuses one ScenarioRunner)",
    )
    serve_sub.add_argument(
        "--queue-depth", type=int, default=64,
        help="admission-control bound; submissions past it get 429",
    )
    serve_sub.add_argument(
        "--jobs", type=int, default=1,
        help="fork-pool processes per worker for batched scenarios",
    )
    serve_sub.add_argument(
        "--no-durable", action="store_true",
        help="skip fsync on checkpoint writes (faster, weaker crash story)",
    )
    serve_sub.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="journal directory (default: <cache>/service)",
    )
    serve_sub.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="durable service state (run-registry WAL + journals); "
        "restarting with the same dir recovers queued and in-flight "
        "runs (default: <cache>/service)",
    )
    serve_sub.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="S",
        help="graceful-shutdown budget for in-flight runs; stragglers "
        "are cancelled back to queued (resumed on next start)",
    )
    serve_sub.add_argument(
        "--sweep-shm", action="store_true",
        help="reclaim leaked repro-kernels-* /dev/shm segments at "
        "startup (only when no other repro process shares the host)",
    )
    serve_sub.add_argument(
        "--history-limit", type=int, default=512,
        help="finished runs retained in memory before eviction",
    )
    serve_sub.add_argument(
        "--trace", metavar="PATH", default=None,
        help="append every run's span events to a rotating trace sink "
        "at PATH (each segment is a valid repro-trace file; inspect "
        "with 'repro-bench report')",
    )
    serve_sub.add_argument(
        "--trace-max-mb", type=float, default=64.0, metavar="MB",
        help="rotate the --trace sink when a segment exceeds this size "
        "(default: 64)",
    )
    serve_sub.add_argument(
        "--profile", metavar="PATH", default=None,
        help="run the sampling profiler for the service's lifetime and "
        "write the collapsed-stack aggregate to PATH at shutdown",
    )
    serve_sub.set_defaults(handler=_cmd_serve)

    runs_sub = subparsers.add_parser("runs", help=_cmd_runs.__doc__)
    add_log_level(runs_sub)
    runs_sub.add_argument(
        "action", choices=("gc",),
        help="gc: sweep orphaned checkpoint journals (and, with "
        "--sweep-shm, leaked /dev/shm segments) from a state dir",
    )
    runs_sub.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="service state dir to sweep (default: <cache>/service)",
    )
    runs_sub.add_argument(
        "--sweep-shm", action="store_true",
        help="also reclaim leaked repro-kernels-* /dev/shm segments",
    )
    runs_sub.set_defaults(handler=_cmd_runs)

    chaos_sub = subparsers.add_parser("chaos", help=_cmd_chaos.__doc__)
    add_log_level(chaos_sub)
    chaos_sub.add_argument(
        "--seed", type=int, default=2017, help="campaign seed"
    )
    chaos_sub.add_argument(
        "--events", default=None,
        help="comma-separated event subset (default: "
        "worker-kill,serve-restart,torn-tail,shm-evict,deadline-storm)",
    )
    chaos_sub.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="state dir for the service under test (default: a fresh "
        "temp dir)",
    )
    chaos_sub.add_argument(
        "--workers", type=int, default=2,
        help="worker threads for the service under test",
    )
    chaos_sub.add_argument(
        "--jobs", type=int, default=2,
        help="fork-pool processes per run (>=2 so worker-kill has a "
        "victim)",
    )
    chaos_sub.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="S",
        help="drain budget of the final graceful SIGTERM",
    )
    chaos_sub.add_argument(
        "--gate-recovery-s", type=float, default=None, metavar="S",
        help="fail (exit 1) if kill-to-recovered exceeds this budget",
    )
    chaos_sub.add_argument(
        "--output", metavar="PATH", default=None,
        help="append service_recovery_s to this BENCH trajectory file",
    )
    chaos_sub.add_argument(
        "--label", default="chaos", help="trajectory point label"
    )
    chaos_sub.set_defaults(handler=_cmd_chaos)

    load_sub = subparsers.add_parser("load", help=_cmd_load.__doc__)
    add_log_level(load_sub)
    load_sub.add_argument(
        "--scenario", default="fig10", help="registered scenario to submit"
    )
    load_sub.add_argument(
        "--levels", default="4,8,16,32,64,100,128",
        help="comma-separated burst sizes, tried in order",
    )
    load_sub.add_argument(
        "--host", default=None,
        help="target an already-running service (default: self-host)",
    )
    load_sub.add_argument(
        "--port", type=int, default=8780, help="target port (with --host)"
    )
    load_sub.add_argument(
        "--workers", type=int, default=4,
        help="worker threads for the self-hosted service",
    )
    load_sub.add_argument(
        "--queue-depth", type=int, default=256,
        help="queue bound for the self-hosted service",
    )
    load_sub.add_argument(
        "--gate-p99-ms", type=float, default=None, metavar="MS",
        help="fail (exit 1) if submit p99 exceeds this budget",
    )
    load_sub.add_argument(
        "--output", metavar="PATH", default=None,
        help="append the headline numbers to this BENCH trajectory file",
    )
    load_sub.add_argument(
        "--label", default="service-load", help="trajectory point label"
    )
    load_sub.set_defaults(handler=_cmd_load)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-bench`` console script."""
    args = build_parser().parse_args(argv)
    from .obs import logging_setup

    try:
        logging_setup(getattr(args, "log_level", None))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    status = args.handler(args)
    return int(status) if status else 0


if __name__ == "__main__":
    sys.exit(main())
