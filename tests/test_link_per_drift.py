"""Tests for the packet-error model and the pattern-aging experiment."""

import numpy as np
import pytest

from repro.experiments import DriftConfig, run_pattern_drift
from repro.link import MCS_TABLE, PacketErrorModel, ThroughputModel


class TestPacketErrorModel:
    @pytest.fixture
    def model(self):
        return PacketErrorModel()

    def test_per_anchored_at_threshold(self, model):
        mcs = MCS_TABLE[5]
        assert model.packet_error_rate(mcs, mcs.min_sweep_snr_db) == pytest.approx(0.10)

    def test_per_monotone_in_snr(self, model):
        mcs = MCS_TABLE[5]
        pers = [
            model.packet_error_rate(mcs, mcs.min_sweep_snr_db + margin)
            for margin in np.linspace(-5, 10, 16)
        ]
        assert pers == sorted(pers, reverse=True)

    def test_per_bounded(self, model):
        mcs = MCS_TABLE[0]
        for snr in (-50.0, 0.0, 50.0):
            per = model.packet_error_rate(mcs, snr)
            assert 0.0 <= per <= 1.0

    def test_retries_raise_delivery(self):
        few = PacketErrorModel(max_retries=0)
        many = PacketErrorModel(max_retries=5)
        mcs = MCS_TABLE[4]
        snr = mcs.min_sweep_snr_db  # PER = 0.1
        assert many.delivery_probability(mcs, snr) > few.delivery_probability(mcs, snr)

    def test_effective_rate_below_phy_rate(self, model):
        mcs = MCS_TABLE[8]
        assert model.effective_rate_mbps(mcs, mcs.min_sweep_snr_db) < mcs.phy_rate_mbps

    def test_effective_rate_approaches_phy_with_margin(self, model):
        mcs = MCS_TABLE[8]
        rate = model.effective_rate_mbps(mcs, mcs.min_sweep_snr_db + 10.0)
        assert rate == pytest.approx(mcs.phy_rate_mbps, rel=1e-3)

    def test_best_mcs_trades_rate_against_per(self, model):
        """Just below a threshold, a lower MCS can beat a higher one."""
        high = MCS_TABLE[9]
        best = model.best_mcs(high.min_sweep_snr_db - 1.5)
        assert best is not None
        assert best.index <= high.index

    def test_best_mcs_none_when_dead(self, model):
        assert model.best_mcs(-40.0) is None
        assert model.goodput_gbps(-40.0) == 0.0

    def test_soft_goodput_tracks_hard_model(self, model):
        """Far from thresholds the soft model matches the hard ladder."""
        hard = ThroughputModel(host_cap_gbps=99.0)
        for snr in (9.0, 13.5, 20.0):
            soft = model.goodput_gbps(snr)
            cliff = hard.goodput_gbps(snr)
            assert soft == pytest.approx(cliff, rel=0.15)

    def test_soft_model_smooth_at_threshold(self, model):
        """No cliff: goodput changes gently across an MCS boundary."""
        threshold = MCS_TABLE[7].min_sweep_snr_db
        below = model.goodput_gbps(threshold - 0.2)
        above = model.goodput_gbps(threshold + 0.2)
        assert abs(above - below) < 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketErrorModel(per_at_threshold=0.0)
        with pytest.raises(ValueError):
            PacketErrorModel(steepness_db=0.0)
        with pytest.raises(ValueError):
            PacketErrorModel(max_retries=-1)


class TestPatternDrift:
    @pytest.fixture(scope="class")
    def result(self):
        return run_pattern_drift(
            DriftConfig(drift_levels_rad=(0.0, 0.3, 0.8), azimuth_step_deg=20.0, n_sweeps=3)
        )

    def test_fresh_table_baseline(self, result):
        assert result.drift_levels_rad[0] == 0.0
        assert result.snr_loss_db[0] < 3.0

    def test_degradation_is_graceful(self, result):
        # Heavy drift hurts, but CSS does not collapse.
        assert result.snr_loss_db[-1] > result.snr_loss_db[0]
        assert result.snr_loss_db[-1] < 10.0

    def test_moderate_drift_tolerated(self, result):
        """~17 deg of phase drift costs little — re-calibration can wait."""
        assert result.snr_loss_db[1] < result.snr_loss_db[0] + 2.5
