"""Bench: regenerate Figure 11 (TCP goodput, CSS-14 vs full sweep).

Paper shape: at −45°, 0° and +45° in the conference room both
algorithms land around 1.4-1.5 Gbps, with CSS slightly ahead thanks to
its more stable selections ("differences might barely be recognizable
but show the additional performance gain from higher stability").
"""

import numpy as np

from repro.experiments import Fig11Config, run_fig11


def test_fig11_throughput(benchmark, report_rows):
    config = Fig11Config(n_probes=14, n_intervals=60)
    result = benchmark.pedantic(lambda: run_fig11(config), rounds=1, iterations=1)
    report_rows(result.format_rows())

    assert result.directions_deg == [-45.0, 0.0, 45.0]
    for css, ssw in zip(result.css_gbps, result.ssw_gbps):
        # Paper magnitude: around 1.5 Gbps for both algorithms.
        assert 1.0 < css < 1.85
        assert 1.0 < ssw < 1.85
        # "barely recognizable" differences, not collapses.
        assert abs(css - ssw) < 0.35

    # On average CSS keeps pace with the full sweep despite probing
    # 2.4x fewer sectors.
    assert np.mean(result.css_gbps) > np.mean(result.ssw_gbps) - 0.15
