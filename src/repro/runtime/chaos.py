"""Chaos campaign harness: prove the service survives real crashes.

``repro-bench chaos`` drives a *live* ``repro-bench serve`` subprocess
through a deterministic, seeded campaign of failure events and checks
the recovery invariants the design promises (DESIGN.md §14):

* ``worker-kill``    — SIGKILL a fork-pool worker mid-run; supervision
  replaces the pool and the run's digest still matches a clean local
  execution.
* ``serve-restart``  — SIGKILL the whole service mid-run, restart it on
  the same ``--state-dir``; the run registry re-admits the interrupted
  run, the checkpoint journal resumes it (``checkpoint_hits > 0``) and
  the final digest is bit-identical to an uninterrupted run.
* ``torn-tail``      — append a torn (newline-less) line to the run
  registry while the service is down; the restart truncates the tail
  and retained history survives intact.
* ``shm-evict``      — plant a leaked ``/dev/shm/repro-kernels-*``
  segment; startup GC reclaims it.
* ``deadline-storm`` — a burst of submissions with microscopic
  deadlines all settle in the terminal ``deadline`` state while a
  normal bystander run completes unharmed.

The bar everywhere is *bit-identity*, not mere survival: every digest
produced under chaos must equal the digest of the same spec run
uninterrupted through a local :class:`~repro.runtime.ScenarioRunner`.
The campaign ends with a graceful SIGTERM (drain must exit 0 with zero
lost runs) and offline invariants: the registry replays consistently,
no checkpoint journal is orphaned, no shm segment leaked, and the
health accounting matches the event ledger exactly.

``service_recovery_s`` (kill → restarted service answering for the
interrupted run) lands in BENCH_core.json; ``--gate-recovery-s`` turns
it into a CI gate.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ChaosConfig", "ChaosReport", "run_chaos", "DEFAULT_EVENTS"]

#: The full campaign, in execution order.
DEFAULT_EVENTS: Tuple[str, ...] = (
    "worker-kill",
    "serve-restart",
    "torn-tail",
    "shm-evict",
    "deadline-storm",
)

#: States the service will never leave.
_TERMINAL = ("done", "failed", "cancelled", "deadline")


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of one chaos campaign."""

    state_dir: str
    seed: int = 2017
    events: Tuple[str, ...] = DEFAULT_EVENTS
    workers: int = 2
    jobs: int = 2
    drain_timeout_s: float = 30.0
    startup_timeout_s: float = 90.0
    run_timeout_s: float = 240.0
    gate_recovery_s: Optional[float] = None


@dataclass
class ChaosReport:
    """Everything one campaign observed."""

    seed: int
    events: List[Dict[str, Any]] = field(default_factory=list)
    invariants: Dict[str, bool] = field(default_factory=dict)
    details: Dict[str, str] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)

    def ok(self) -> bool:
        return bool(self.invariants) and all(self.invariants.values())

    def format_rows(self) -> List[str]:
        rows = [f"chaos campaign: seed={self.seed}"]
        for event in self.events:
            parts = " ".join(
                f"{key}={value}" for key, value in event.items() if key != "event"
            )
            rows.append(f"  event {event['event']:<16s} {parts}")
        for name in sorted(self.invariants):
            verdict = "ok" if self.invariants[name] else "FAILED"
            detail = self.details.get(name, "")
            suffix = f"  ({detail})" if detail and verdict == "FAILED" else ""
            rows.append(f"  invariant {name:<36s} {verdict}{suffix}")
        for name in sorted(self.metrics):
            rows.append(f"  {name:46s} {self.metrics[name]:12.5g}")
        return rows


def _all_children(pid: int) -> List[int]:
    """Direct child processes of a service (resource tracker included).

    Children are listed per *thread*: the service forks its pool from
    executor threads, so only walking every ``/proc/<pid>/task/<tid>``
    sees them all.
    """
    children: List[int] = []
    try:
        tids = sorted(path.name for path in Path(f"/proc/{pid}/task").iterdir())
    except OSError:
        return []
    for tid in tids:
        try:
            text = Path(f"/proc/{pid}/task/{tid}/children").read_text()
        except OSError:
            continue
        children.extend(int(part) for part in text.split())
    return sorted(set(children))


def _pool_children(pid: int) -> List[int]:
    """Fork-pool worker processes of a service, resource tracker excluded."""
    children: List[int] = []
    for child in _all_children(pid):
        try:
            cmdline = (
                Path(f"/proc/{child}/cmdline")
                .read_bytes()
                .replace(b"\0", b" ")
                .decode(errors="replace")
            )
        except OSError:
            continue
        if "resource_tracker" in cmdline:
            continue
        children.append(child)
    return children


def _journal_entries(path: Path) -> int:
    """Completed-block entries in a checkpoint journal (header excluded)."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return 0
    return max(0, text.count("\n") - 1)


class _ManagedService:
    """One ``repro-bench serve`` subprocess the campaign owns."""

    def __init__(self, config: ChaosConfig):
        self.config = config
        self.port = 0
        self.proc: Optional[subprocess.Popen] = None
        self._lines: List[str] = []

    def start(self) -> None:
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            str(self.port),
            "--state-dir",
            str(self.config.state_dir),
            "--workers",
            str(self.config.workers),
            "--jobs",
            str(self.config.jobs),
            "--drain-timeout",
            str(self.config.drain_timeout_s),
            "--sweep-shm",
        ]
        self._lines = []
        # The subprocess must import the same repro package as this
        # process, installed or straight from a source tree.
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (package_root, env.get("PYTHONPATH", ""))
            if part
        )
        # Post-mortem stacks on a fatal signal cost nothing and turn a
        # wedged service under chaos into a readable bug report.
        env.setdefault("PYTHONFAULTHANDLER", "1")
        self.proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        threading.Thread(
            target=self._pump, args=(self.proc,), daemon=True
        ).start()
        deadline = time.monotonic() + self.config.startup_timeout_s
        while time.monotonic() < deadline:
            for line in tuple(self._lines):
                if "listening on http://" in line:
                    self.port = int(line.strip().rsplit(":", 1)[1])
                    return
            if self.proc.poll() is not None:
                raise RuntimeError(
                    "service exited during startup "
                    f"(rc={self.proc.returncode}):\n{''.join(self._lines)}"
                )
            time.sleep(0.02)
        raise TimeoutError("service never reported a listening port")

    def _pump(self, proc: subprocess.Popen) -> None:
        assert proc.stdout is not None
        for line in proc.stdout:
            self._lines.append(line)

    @property
    def client(self):
        from ..service.client import ServiceClient

        return ServiceClient(port=self.port, timeout=30.0)

    def kill(self) -> None:
        """SIGKILL: the crash the durable state dir must survive.

        Fork-pool children inherit the listening socket, so orphans
        left by the parent's SIGKILL would keep the port bound — kill
        them too, then wait for the port to actually free before the
        restart (a real supervisor gets this for free from its cgroup).
        """
        assert self.proc is not None
        orphans = _all_children(self.proc.pid)
        self.proc.kill()
        self.proc.wait()
        for child in orphans:
            try:
                os.kill(child, signal.SIGKILL)
            except OSError:
                pass
        self._wait_port_free()

    def _wait_port_free(self, timeout_s: float = 30.0) -> None:
        if not self.port:
            return
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            probe = socket.socket()
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                probe.bind(("127.0.0.1", self.port))
                return
            except OSError:
                time.sleep(0.05)
            finally:
                probe.close()
        raise TimeoutError(f"port {self.port} never freed after SIGKILL")

    def terminate(self, timeout_s: float = 120.0) -> Tuple[int, str]:
        """SIGTERM: graceful drain; returns (exit code, captured output)."""
        assert self.proc is not None
        self.proc.send_signal(signal.SIGTERM)
        rc = self.proc.wait(timeout=timeout_s)
        time.sleep(0.2)  # let the pump thread drain the last lines
        return rc, "".join(self._lines)

    def reap(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


class _Campaign:
    """The seeded event sequence and its invariant ledger."""

    def __init__(self, config: ChaosConfig):
        self.config = config
        self.rng = random.Random(config.seed)
        self.state_dir = Path(config.state_dir)
        self.service = _ManagedService(config)
        self.report = ChaosReport(seed=config.seed)
        self._clean: Dict[str, str] = {}
        self._expected = {"done": 0, "deadline": 0}

    # -- plumbing --------------------------------------------------------

    @property
    def client(self):
        return self.service.client

    def spec(self, offset: int, n_sweeps: int = 4):
        from .spec import PolicySpec, ScenarioSpec

        return ScenarioSpec(
            scenario="policy-eval",
            seed=self.config.seed + offset,
            policies=(PolicySpec("css", {"n_probes": 14}),),
            params={
                "azimuth_step_deg": 30.0,
                "distance_m": 6.0,
                "n_sweeps": n_sweeps,
            },
        )

    def clean_digest(self, spec) -> str:
        """The uninterrupted local digest every chaos run must match."""
        key = spec.digest()
        if key not in self._clean:
            from .runner import ScenarioRunner

            with ScenarioRunner() as runner:
                outcome = runner.run(spec)
            self._clean[key] = outcome.manifest.result_sha256
        return self._clean[key]

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        self.report.invariants[name] = bool(passed)
        if detail:
            self.report.details[name] = detail
        print(f"chaos: {'ok  ' if passed else 'FAIL'} {name}"
              + (f" ({detail})" if detail and not passed else ""),
              flush=True)

    # -- events ----------------------------------------------------------

    def event_worker_kill(self) -> Dict[str, Any]:
        # Big enough that the pool phase outlives the victim-settle
        # delay below, so the death lands while blocks are in flight.
        spec = self.spec(1, n_sweeps=8)
        run_id = self.client.submit(spec.to_json())["run"]
        killed = 0
        deadline = time.monotonic() + self.config.run_timeout_s
        while time.monotonic() < deadline:
            payload = self.client.status(run_id)
            if payload["status"] in _TERMINAL:
                break
            children = _pool_children(self.service.proc.pid)
            if payload["status"] == "running" and children:
                victim = self.rng.choice(children)
                # A helper mid-spawn (fork→exec window) still shows the
                # parent's cmdline and can masquerade as a pool worker —
                # SIGKILLing the half-born resource tracker is a
                # different experiment.  Re-classify after a settle
                # delay and only shoot a confirmed pool worker.
                time.sleep(0.05)
                if victim not in _pool_children(self.service.proc.pid):
                    continue
                os.kill(victim, signal.SIGKILL)
                killed = 1
                break
            time.sleep(0.01)
        final = self.client.wait(run_id, timeout=self.config.run_timeout_s)
        self._expected["done"] += 1
        self.check(
            "worker_kill_run_done",
            final["status"] == "done",
            final.get("error", ""),
        )
        self.check(
            "worker_kill_digest_identical",
            final.get("result_sha256") == self.clean_digest(spec),
        )
        health = self.client.status(run_id)["manifest"].get("health", {})
        return {
            "event": "worker-kill",
            "run": run_id,
            "killed": killed,
            "pool_replacements": health.get("pool_replacements", 0),
        }

    def event_serve_restart(self) -> Dict[str, Any]:
        # Catch a run mid-flight: at least one block journaled, run
        # still running.  Escalate the spec size if the run keeps
        # finishing before the kill lands (fast machines).
        caught = False
        spec = None
        run_id = ""
        for attempt, sweeps in enumerate((4, 8, 16)):
            spec = self.spec(30 + attempt, n_sweeps=sweeps)
            run_id = self.client.submit(spec.to_json())["run"]
            journal = Path(self.client.status(run_id)["checkpoint"])
            deadline = time.monotonic() + self.config.run_timeout_s
            while time.monotonic() < deadline:
                payload = self.client.status(run_id)
                if payload["status"] in _TERMINAL:
                    break
                if payload["status"] == "running" and _journal_entries(journal) >= 1:
                    caught = True
                    break
                time.sleep(0.005)
            if caught:
                break
            # The warm-up run completed untouched; it still must match.
            final = self.client.wait(run_id, timeout=self.config.run_timeout_s)
            self._expected["done"] += 1
            self.check(
                f"serve_restart_warmup{attempt}_digest",
                final.get("result_sha256") == self.clean_digest(spec),
            )
        self.check("serve_restart_caught_midrun", caught)
        if not caught:
            return {"event": "serve-restart", "caught": 0}
        self.service.kill()
        begin = time.perf_counter()
        self.service.start()
        payload = self.client.status(run_id)
        recovery_s = time.perf_counter() - begin
        self.check(
            "serve_restart_run_readmitted",
            payload["status"] in ("queued", "running"),
            f"status={payload['status']}",
        )
        final = self.client.wait(run_id, timeout=self.config.run_timeout_s)
        self._expected["done"] += 1
        self.check(
            "serve_restart_digest_identical",
            final.get("result_sha256") == self.clean_digest(spec),
        )
        hits = (
            self.client.status(run_id)["manifest"]
            .get("health", {})
            .get("checkpoint_hits", 0)
        )
        self.check("serve_restart_resumed_from_journal", hits > 0, f"hits={hits}")
        self.report.metrics["service_recovery_s"] = round(recovery_s, 3)
        return {
            "event": "serve-restart",
            "run": run_id,
            "caught": 1,
            "recovery_s": round(recovery_s, 3),
            "checkpoint_hits": hits,
        }

    def event_torn_tail(self) -> Dict[str, Any]:
        spec = self.spec(50)
        run_id = self.client.submit(spec.to_json())["run"]
        final = self.client.wait(run_id, timeout=self.config.run_timeout_s)
        self._expected["done"] += 1
        digest = final.get("result_sha256")
        self.check(
            "torn_tail_precondition_done",
            final["status"] == "done" and digest == self.clean_digest(spec),
        )
        self.service.kill()
        registry = self.state_dir / "registry.jsonl"
        with registry.open("a", encoding="utf-8") as handle:
            handle.write('{"event": {"run": "r-torn", "to": "done"')
        self.service.start()
        payload = self.client.status(run_id)
        self.check(
            "torn_tail_history_survives",
            payload["status"] == "done"
            and payload.get("result_sha256") == digest,
        )
        return {"event": "torn-tail", "run": run_id}

    def event_shm_evict(self) -> Dict[str, Any]:
        self.service.kill()
        marker = Path(f"/dev/shm/repro-kernels-chaos{os.getpid()}")
        try:
            marker.write_bytes(b"\x00")
        except OSError as error:
            self.service.start()
            return {"event": "shm-evict", "skipped": f"no /dev/shm: {error}"}
        self.service.start()
        self.check("shm_evict_swept", not marker.exists())
        marker.unlink(missing_ok=True)
        return {"event": "shm-evict", "planted": str(marker)}

    def event_deadline_storm(self) -> Dict[str, Any]:
        storm_spec = self.spec(60)
        storm = [
            self.client.submit(storm_spec.to_json(), deadline_s=0.001)["run"]
            for _ in range(4)
        ]
        bystander_spec = self.spec(61)
        bystander = self.client.submit(bystander_spec.to_json())["run"]
        finals = [
            self.client.wait(run, timeout=self.config.run_timeout_s)
            for run in storm
        ]
        self._expected["deadline"] += len(storm)
        self.check(
            "deadline_storm_all_expired",
            all(final["status"] == "deadline" for final in finals),
            ",".join(final["status"] for final in finals),
        )
        final = self.client.wait(bystander, timeout=self.config.run_timeout_s)
        self._expected["done"] += 1
        self.check(
            "deadline_storm_bystander_done",
            final["status"] == "done"
            and final.get("result_sha256") == self.clean_digest(bystander_spec),
        )
        return {"event": "deadline-storm", "expired": len(storm), "bystander": bystander}

    # -- end-of-campaign invariants --------------------------------------

    def finish(self) -> None:
        health = self.client.healthz()
        counts = health["runs"]
        self.check(
            "health_no_live_runs",
            counts.get("queued", 0) == 0 and counts.get("running", 0) == 0,
            f"queued={counts.get('queued')} running={counts.get('running')}",
        )
        self.check(
            "health_accounting_exact",
            counts.get("done", 0) == self._expected["done"]
            and counts.get("deadline", 0) == self._expected["deadline"]
            and counts.get("failed", 0) == 0
            and counts.get("cancelled", 0) == 0,
            f"saw {counts}, expected {self._expected}",
        )
        retained = sum(counts.values())
        rc, output = self.service.terminate()
        self.check("graceful_exit_rc0", rc == 0, f"rc={rc}")
        self.check("graceful_drain_logged", "drain complete" in output)

        from ..service.registry import RunRegistry

        registry = RunRegistry(self.state_dir / "registry.jsonl", durable=False)
        try:
            first, second = registry.replay(), registry.replay()
            self.check(
                "registry_replay_consistent",
                first == second and len(first) == retained,
                f"replayed={len(first)} retained={retained}",
            )
            referenced = {
                str(state.get("checkpoint_path", "")) for state in first.values()
            }
        finally:
            registry.close()
        orphans = [
            str(path)
            for path in sorted(self.state_dir.glob("*.jsonl"))
            if path.name != "registry.jsonl" and str(path) not in referenced
        ]
        self.check("no_orphan_journals", orphans == [], ";".join(orphans))

        from .shm import leaked_segments

        leaked = leaked_segments()
        self.check("no_leaked_shm", leaked == [], ";".join(leaked))

    # -- driver ----------------------------------------------------------

    def run(self) -> ChaosReport:
        handlers = {
            "worker-kill": self.event_worker_kill,
            "serve-restart": self.event_serve_restart,
            "torn-tail": self.event_torn_tail,
            "shm-evict": self.event_shm_evict,
            "deadline-storm": self.event_deadline_storm,
        }
        unknown = [name for name in self.config.events if name not in handlers]
        if unknown:
            raise ValueError(f"unknown chaos event(s): {', '.join(unknown)}")
        begin = time.perf_counter()
        self.service.start()
        try:
            for name in self.config.events:
                print(f"chaos: event {name}", flush=True)
                self.report.events.append(handlers[name]())
            self.finish()
        finally:
            self.service.reap()
        self.report.metrics.setdefault("service_recovery_s", 0.0)
        self.report.metrics["chaos_wall_s"] = round(
            time.perf_counter() - begin, 3
        )
        self.report.metrics["chaos_events_total"] = float(len(self.report.events))
        self.report.metrics["chaos_invariants_failed"] = float(
            sum(1 for passed in self.report.invariants.values() if not passed)
        )
        return self.report


def run_chaos(
    config: ChaosConfig,
    output: Optional[str] = None,
    label: str = "chaos",
) -> int:
    """Execute the campaign; print the report; optionally append a BENCH
    point; return a process exit code (nonzero = invariant or gate broke)."""
    Path(config.state_dir).mkdir(parents=True, exist_ok=True)
    report = _Campaign(config).run()
    print("\n".join(report.format_rows()))

    status = 0 if report.ok() else 1
    if status:
        print("CHAOS FAILED: at least one invariant broke")
    if config.gate_recovery_s is not None:
        recovery = report.metrics.get("service_recovery_s", float("inf"))
        if recovery > config.gate_recovery_s:
            print(
                f"GATE FAILED: recovery {recovery:.2f} s exceeds "
                f"{config.gate_recovery_s:.2f} s"
            )
            status = 1
        else:
            print(
                f"gate: recovery {recovery:.2f} s within "
                f"{config.gate_recovery_s:.2f} s budget"
            )
    if output:
        from datetime import datetime, timezone

        from ..perf import PerfPoint, _environment, append_point

        point = PerfPoint(
            label=label,
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            metrics=report.metrics,
            environment=_environment(),
        )
        append_point(output, point)
        print(f"appended trajectory point '{label}' to {output}")
    return status
