"""Probe measurements: the selector-facing view of one sector sweep.

Selectors consume a list of :class:`ProbeMeasurement` — one entry per
sector that was probed *and* produced a firmware report.  Sectors whose
frames were missed or whose reports were dropped are simply absent,
which is how the real system behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..firmware.chip import SweepReport

__all__ = ["ProbeMeasurement", "from_sweep_reports"]


@dataclass(frozen=True)
class ProbeMeasurement:
    """Signal strength reported for one probed sector."""

    sector_id: int
    snr_db: float
    rssi_dbm: float

    def __post_init__(self) -> None:
        if not 0 <= self.sector_id <= 63:
            raise ValueError("sector ID is a 6-bit field")


def from_sweep_reports(reports: Iterable[SweepReport]) -> List[ProbeMeasurement]:
    """Convert drained firmware ring-buffer reports into measurements.

    When a sector was reported more than once (e.g. the buffer held two
    sweeps), the *latest* report wins.
    """
    latest = {}
    for report in reports:
        latest[report.sector_id] = report
    return [
        ProbeMeasurement(
            sector_id=report.sector_id, snr_db=report.snr_db, rssi_dbm=report.rssi_dbm
        )
        for report in latest.values()
    ]
