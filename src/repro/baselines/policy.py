"""SelectionPolicy adapters for the baseline strategies.

Registers ``"hierarchical"``, ``"oracle"`` and ``"random-beams"`` so
scenario specs can pit the baselines against CSS through the same
:class:`~repro.runtime.runner.ScenarioRunner` engine.

The hierarchical adapter unrolls :meth:`HierarchicalSearch.run` into
the round-by-round protocol: ``run_interactive`` drives the same two
measure calls in the same order, so its :class:`PolicyOutcome` matches
the legacy :class:`HierarchicalOutcome` field for field (probes used,
round count, training time).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.compressive import CompressiveSectorSelector
from ..core.measurements import ProbeMeasurement
from ..core.selector import SelectionResult
from ..mac.timing import multi_round_training_time_us
from ..runtime.policy import PolicyContext
from ..runtime.registry import register_policy
from .hierarchical import HierarchicalSearch
from .oracle import OracleSelector
from .random_beams import random_beam_codebook, theoretical_pattern_table

__all__ = ["HierarchicalPolicy", "OraclePolicy", "RandomBeamPolicy"]


@register_policy("hierarchical")
class HierarchicalPolicy:
    """Two-level beam search as a multi-round runtime policy."""

    multi_round = True

    def __init__(
        self,
        context: PolicyContext,
        n_groups: int = 6,
        pattern_table=None,
    ):
        table = (
            pattern_table
            if pattern_table is not None
            else context.testbed.pattern_table
        )
        key = ("hierarchical-groups", id(table), int(n_groups))
        search = context.cache.get(key)
        if search is None:
            search = HierarchicalSearch(table, n_groups=n_groups)
            context.cache[key] = search
        self.name = "hierarchical"
        # Only the immutable clustering is shared; fallback state is
        # per-policy so concurrent adapters cannot cross-talk.
        self.groups = search.groups
        self._initial_selection = search.initial_selection
        self._last_selection = self._initial_selection
        self._first_round: Optional[List[ProbeMeasurement]] = None
        self._members: Optional[List[int]] = None
        self._finished = True

    def reset(self) -> None:
        self._last_selection = self._initial_selection
        self._first_round = None
        self._members = None
        self._finished = True

    def probes_for_round(
        self, round_index: int, pool: Sequence[int], rng: np.random.Generator
    ) -> Optional[List[int]]:
        if round_index == 0:
            self._first_round = None
            self._members = None
            self._finished = False
            return list(self.groups)
        if round_index == 1 and not self._finished and self._members is not None:
            return list(self._members)
        return None

    def select(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        if self._members is None and not self._finished:
            # Round 0: pick the winning representative, or bail out to
            # the fallback sector when nothing decoded (the legacy
            # one-round outcome — round 1 is then skipped).
            self._first_round = list(measurements)
            if not self._first_round:
                self._finished = True
                return SelectionResult(
                    sector_id=self._last_selection, fallback=True
                )
            best = max(self._first_round, key=lambda m: m.snr_db)
            self._members = list(self.groups[best.sector_id])
            return SelectionResult(sector_id=best.sector_id)
        # Round 1: best of the winning group, first round as backstop.
        pool = list(measurements) or list(self._first_round or [])
        best = max(pool, key=lambda m: m.snr_db)
        self._last_selection = best.sector_id
        self._finished = True
        return SelectionResult(sector_id=best.sector_id)

    def training_time_us(self, probes_used: int, n_rounds: int = 1) -> float:
        return multi_round_training_time_us(probes_used, n_rounds)


@register_policy("oracle")
class OraclePolicy:
    """Ground-truth argmax selection (zero probes, zero airtime).

    Scenarios must call :meth:`set_truth` with the sweep's true SNR
    vector before each selection; the ``needs_truth`` attribute is how
    they discover that requirement.
    """

    multi_round = False
    needs_truth = True

    def __init__(
        self, context: PolicyContext, sector_ids: Optional[Sequence[int]] = None
    ):
        ids = (
            list(sector_ids)
            if sector_ids is not None
            else list(context.testbed.tx_sector_ids)
        )
        self.name = "oracle"
        self.selector = OracleSelector(ids)
        self._truth: Optional[np.ndarray] = None

    def set_truth(self, true_snr_db: np.ndarray) -> None:
        self._truth = np.asarray(true_snr_db, dtype=float)

    def reset(self) -> None:
        self._truth = None

    def probes_for_round(
        self, round_index: int, pool: Sequence[int], rng: np.random.Generator
    ) -> Optional[List[int]]:
        return [] if round_index == 0 else None

    def select(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        if self._truth is None:
            raise ValueError("oracle policy needs set_truth(...) before select")
        return self.selector.select_from_truth(self._truth)

    def training_time_us(self, probes_used: int, n_rounds: int = 1) -> float:
        return 0.0


@register_policy("random-beams")
class RandomBeamPolicy:
    """Pseudo-random probing beams (Rasekh et al.) as a runtime policy.

    Probes come from the policy's *own* random-beam codebook (exposed
    as :attr:`codebook` / :attr:`probe_pool`), not the testbed's stock
    sectors, and are correlated against their theoretical patterns —
    a designer of this scheme has nothing else.  Scenarios that see
    a ``probe_pool`` attribute must simulate observations for those
    sector IDs instead of replaying stock-sector sweeps.
    """

    multi_round = False

    def __init__(
        self,
        context: PolicyContext,
        n_probes: int = 14,
        n_beams: int = 29,
        codebook_seed: int = 25,
    ):
        testbed = context.testbed
        key = ("random-beams", int(n_beams), int(codebook_seed))
        cached = context.cache.get(key)
        if cached is None:
            codebook = random_beam_codebook(
                testbed.dut_antenna,
                n_beams,
                np.random.default_rng(codebook_seed),
            )
            table = theoretical_pattern_table(
                codebook, testbed.pattern_table.grid, antenna=testbed.dut_antenna
            )
            cached = (codebook, CompressiveSectorSelector(table))
            context.cache[key] = cached
        self.codebook, self.selector = cached
        self.name = "random-beams"
        self.n_probes = int(n_probes)
        self.probe_pool = list(self.codebook.tx_sector_ids)

    def reset(self) -> None:
        self.selector.reset()

    def probes_for_round(
        self, round_index: int, pool: Sequence[int], rng: np.random.Generator
    ) -> Optional[List[int]]:
        if round_index > 0:
            return None
        chosen = rng.choice(
            len(self.probe_pool), size=self.n_probes, replace=False
        )
        return [self.probe_pool[index] for index in chosen]

    def select(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        return self.selector.select(measurements)

    def select_batch(
        self,
        sector_ids: np.ndarray,
        snr_db: np.ndarray,
        rssi_dbm: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> List[SelectionResult]:
        return self.selector.select_batch(
            sector_ids, snr_db=snr_db, rssi_dbm=rssi_dbm, mask=mask
        )

    def training_time_us(self, probes_used: int, n_rounds: int = 1) -> float:
        return multi_round_training_time_us(probes_used, n_rounds)
