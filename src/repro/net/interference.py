"""Directional spatial reuse: inter-pair interference and SINR.

§7's dense-room argument assumes directional data links coexist; how
well they do depends on the actual sector patterns — a wide or smeared
beam leaks power into a neighbour's receiver.  This module computes
the pairwise interference of concurrently transmitting pairs from the
same ground-truth antenna model the rest of the simulator uses, and
turns SNR into SINR per link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..channel.environment import Environment
from ..channel.link import LinkBudget, LinkSimulator
from ..geometry.rotation import Orientation
from ..phased_array.array import PhasedArray
from ..phased_array.weights import WeightVector

__all__ = ["DirectionalLink", "InterferenceGraph"]


@dataclass(frozen=True)
class DirectionalLink:
    """One concurrently active TX→RX pair in the room.

    Attributes:
        name: pair identifier.
        tx_position_m / rx_position_m: endpoints in the world frame.
        tx_orientation / rx_orientation: device poses.
        tx_weights: the TX sector in use (the trained selection).
        rx_weights: the receive pattern (quasi-omni on the Talon).
    """

    name: str
    tx_position_m: np.ndarray
    rx_position_m: np.ndarray
    tx_orientation: Orientation
    rx_orientation: Orientation
    tx_weights: WeightVector
    rx_weights: WeightVector


class InterferenceGraph:
    """All-pairs interference inside one room."""

    def __init__(
        self,
        environment: Environment,
        antenna: PhasedArray,
        links: List[DirectionalLink],
        budget: Optional[LinkBudget] = None,
    ):
        """
        Args:
            environment: the room (its reflectors also carry
                interference).
            antenna: the array model shared by every device.
        """
        if not links:
            raise ValueError("need at least one link")
        names = [link.name for link in links]
        if len(set(names)) != len(names):
            raise ValueError("link names must be unique")
        self.environment = environment
        self.antenna = antenna
        self.links = list(links)
        self.budget = budget if budget is not None else LinkBudget()

    def _received_power_dbm(
        self, transmitter: DirectionalLink, receiver: DirectionalLink
    ) -> float:
        """Power from one link's TX at another link's RX."""
        simulator = LinkSimulator(
            self.environment,
            self.antenna,
            self.antenna,
            self.budget,
            tx_position_m=transmitter.tx_position_m,
            rx_position_m=receiver.rx_position_m,
        )
        return simulator.received_power_dbm(
            transmitter.tx_weights,
            receiver.rx_weights,
            tx_orientation=transmitter.tx_orientation,
            rx_orientation=receiver.rx_orientation,
        )

    def signal_power_dbm(self, link: DirectionalLink) -> float:
        return self._received_power_dbm(link, link)

    def interference_power_dbm(self, victim: DirectionalLink) -> float:
        """Total concurrent interference at one link's receiver."""
        interferers = [link for link in self.links if link.name != victim.name]
        if not interferers:
            return -np.inf
        linear = sum(
            10.0 ** (self._received_power_dbm(source, victim) / 10.0)
            for source in interferers
        )
        return float(10.0 * np.log10(max(linear, 1e-30)))

    def sinr_db(self, victim: DirectionalLink) -> float:
        """Signal over (interference + noise) at the link's receiver."""
        signal = 10.0 ** (self.signal_power_dbm(victim) / 10.0)
        interference_dbm = self.interference_power_dbm(victim)
        interference = (
            0.0 if np.isneginf(interference_dbm) else 10.0 ** (interference_dbm / 10.0)
        )
        noise = 10.0 ** (self.budget.noise_floor_dbm / 10.0)
        return float(10.0 * np.log10(signal / (interference + noise)))

    def all_sinr_db(self) -> dict:
        """SINR per link name."""
        return {link.name: self.sinr_db(link) for link in self.links}

    def reuse_penalty_db(self, link: DirectionalLink) -> float:
        """SNR minus SINR: what spatial reuse costs this link."""
        snr = self.signal_power_dbm(link) - self.budget.noise_floor_dbm
        return float(snr - self.sinr_db(link))
