"""Typed errors for measured-data artifacts.

The pattern table is the single data dependency of the whole selection
pipeline (Eq. 2 needs measured ``x_n(φ, θ)`` values), so a damaged
``.npz`` must surface as a *diagnosable* failure rather than a raw
``zipfile.BadZipFile`` or ``KeyError`` bubbling out of numpy.  Loaders
raise exactly one of the three concrete classes below; callers that
want to degrade gracefully catch :class:`ArtifactError`.
"""

from __future__ import annotations

__all__ = [
    "ArtifactError",
    "ArtifactMissingError",
    "ArtifactCorruptError",
    "ArtifactSchemaError",
]


class ArtifactError(RuntimeError):
    """Base class for every data-artifact failure."""


class ArtifactMissingError(ArtifactError):
    """The artifact file does not exist at the expected location."""


class ArtifactCorruptError(ArtifactError):
    """The file exists but its bytes are damaged (truncation, bit
    flips, bad compression streams, wrong container format)."""


class ArtifactSchemaError(ArtifactError):
    """The container is readable but its contents do not match the
    expected schema (missing keys, wrong shapes or dtypes)."""
