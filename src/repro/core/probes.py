"""Probing-set strategies: which ``M`` sectors to sweep.

The paper probes a *random* subset per sweep (§2.2) and discusses
smarter, context-specific choices in §7.  All strategies share one
interface so experiments can swap them freely.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

import numpy as np

from ..measurement.patterns import PatternTable
from .correlation import normalize_rows, to_linear_power

__all__ = [
    "ProbeStrategy",
    "RandomProbeStrategy",
    "FixedProbeStrategy",
    "GainDiverseProbeStrategy",
]


class ProbeStrategy(Protocol):
    """Chooses the probing subset for one sweep."""

    def choose(
        self, n_probes: int, available_ids: Sequence[int], rng: np.random.Generator
    ) -> List[int]:
        """Return ``n_probes`` distinct sector IDs to probe."""
        ...


def _validate(n_probes: int, available_ids: Sequence[int]) -> None:
    if n_probes < 1:
        raise ValueError("must probe at least one sector")
    if n_probes > len(available_ids):
        raise ValueError(
            f"cannot probe {n_probes} sectors out of {len(available_ids)} available"
        )


class RandomProbeStrategy:
    """The paper's choice: a fresh uniform random subset per sweep."""

    def choose(
        self, n_probes: int, available_ids: Sequence[int], rng: np.random.Generator
    ) -> List[int]:
        _validate(n_probes, available_ids)
        chosen = rng.choice(len(available_ids), size=n_probes, replace=False)
        return [available_ids[index] for index in sorted(chosen)]


class FixedProbeStrategy:
    """Always probe the same pre-selected subset."""

    def __init__(self, sector_ids: Sequence[int]):
        if len(set(sector_ids)) != len(sector_ids):
            raise ValueError("fixed probe set must be unique")
        self._sector_ids = list(sector_ids)

    def choose(
        self, n_probes: int, available_ids: Sequence[int], rng: np.random.Generator
    ) -> List[int]:
        subset = [s for s in self._sector_ids if s in set(available_ids)]
        if n_probes > len(subset):
            raise ValueError(
                f"fixed set provides {len(subset)} usable sectors, {n_probes} requested"
            )
        return subset[:n_probes]


class GainDiverseProbeStrategy:
    """§7's idea: prefer probing sectors with *dissimilar* patterns.

    Greedy max-min selection on the measured patterns: start from the
    strongest sector, then repeatedly add the sector whose pattern has
    the lowest maximum correlation with everything already selected.
    A diverse probe set keeps the Eq. 2 correlation discriminative with
    fewer probes than a random draw.
    """

    def __init__(self, pattern_table: PatternTable):
        self._table = pattern_table
        self._order_cache: Optional[List[int]] = None
        self._cache_key: Optional[tuple] = None

    def _selection_order(self, available_ids: Sequence[int]) -> List[int]:
        key = tuple(available_ids)
        if self._cache_key == key and self._order_cache is not None:
            return self._order_cache

        rows = []
        for sector_id in available_ids:
            pattern = to_linear_power(self._table.pattern(sector_id).ravel())
            rows.append(pattern)
        matrix = normalize_rows(np.asarray(rows))
        similarity = matrix @ matrix.T  # cosine similarity of patterns

        total_gain = matrix.sum(axis=1)
        order = [int(np.argmax(total_gain))]
        remaining = set(range(len(available_ids))) - set(order)
        while remaining:
            candidates = sorted(remaining)
            # For each candidate: its worst-case similarity to the set.
            worst = np.array(
                [similarity[candidate, order].max() for candidate in candidates]
            )
            chosen = candidates[int(np.argmin(worst))]
            order.append(chosen)
            remaining.discard(chosen)

        self._order_cache = [available_ids[index] for index in order]
        self._cache_key = key
        return self._order_cache

    def choose(
        self, n_probes: int, available_ids: Sequence[int], rng: np.random.Generator
    ) -> List[int]:
        _validate(n_probes, available_ids)
        return self._selection_order(available_ids)[:n_probes]
