"""Synthetic Talon AD7200 sector codebook.

The paper measures 35 predefined patterns (TX sectors 1–31 and 61–63
plus the quasi-omni RX sector) and reports their qualitative traits in
§4.4:

* sectors 2, 8, 12, 20, 24 and 63 have one strong lobe;
* sectors 13, 22 and 27 have multiple, equally powered lobes;
* sector 26 covers a wide azimuth range but loses gain at higher
  elevations (a torus-like shape);
* sector 5 has low in-plane gain with stronger lobes at higher
  elevation angles;
* sectors 25 and 62 are weak everywhere measured;
* patterns are distorted behind the device (beyond ±120° azimuth).

This module synthesizes a codebook with exactly those traits on the
32-element array, using 2-bit phase quantization and per-sector
pseudo-random perturbations so the beams look like imperfect low-cost
hardware rather than textbook patterns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .array import PhasedArray
from .codebook import Codebook, RX_SECTOR_ID, Sector
from .elements import ElementLayout
from .steering import steering_vector
from .weights import WeightVector

__all__ = [
    "TALON_TX_SECTOR_IDS",
    "STRONG_SECTOR_IDS",
    "MULTI_LOBE_SECTOR_IDS",
    "WIDE_SECTOR_IDS",
    "ELEVATED_SECTOR_IDS",
    "WEAK_SECTOR_IDS",
    "talon_codebook",
    "fine_codebook",
    "probing_sector_ids",
]

#: TX sector IDs the Talon actually uses (Table 1): 1..31, 61, 62, 63.
TALON_TX_SECTOR_IDS: List[int] = list(range(1, 32)) + [61, 62, 63]

STRONG_SECTOR_IDS = (2, 8, 12, 20, 24, 63)
MULTI_LOBE_SECTOR_IDS = (13, 22, 27)
WIDE_SECTOR_IDS = (26,)
ELEVATED_SECTOR_IDS = (5,)
WEAK_SECTOR_IDS = (25, 62)

#: Hand-assigned steering directions (azimuth, elevation) for the
#: strongly directive sectors; IDs scan the frontal azimuth range.
_STRONG_DIRECTIONS: Dict[int, Tuple[float, float]] = {
    2: (-40.0, 0.0),
    8: (-15.0, 0.0),
    12: (0.0, 5.0),
    20: (15.0, 0.0),
    24: (40.0, 0.0),
    63: (0.0, 0.0),
}

#: Lobe pairs for the multi-lobe sectors.
_MULTI_LOBE_DIRECTIONS: Dict[int, Tuple[Tuple[float, float], Tuple[float, float]]] = {
    13: ((-30.0, 0.0), (30.0, 5.0)),
    22: ((-50.0, 0.0), (20.0, 10.0)),
    27: ((10.0, 0.0), (-60.0, 5.0)),
}

_ELEVATED_DIRECTIONS: Dict[int, Tuple[float, float]] = {5: (5.0, 25.0)}


def _generic_directions(rng: np.random.Generator) -> Dict[int, Tuple[float, float]]:
    """Steering directions for the remaining ordinary sectors.

    The ordinary sectors jointly scan azimuth from −75° to 75° with a
    small spread of elevations, in an ID order shuffled once per
    codebook (real codebooks do not store sectors sorted by angle).
    """
    special = set(
        STRONG_SECTOR_IDS
        + MULTI_LOBE_SECTOR_IDS
        + WIDE_SECTOR_IDS
        + ELEVATED_SECTOR_IDS
        + WEAK_SECTOR_IDS
    )
    generic_ids = [sector_id for sector_id in TALON_TX_SECTOR_IDS if sector_id not in special]
    azimuths = np.linspace(-85.0, 85.0, len(generic_ids))
    elevations = np.resize(np.array([0.0, 8.0, -8.0, 16.0, 24.0]), len(generic_ids))
    order = rng.permutation(len(generic_ids))
    return {
        sector_id: (float(azimuths[slot]), float(elevations[slot]))
        for sector_id, slot in zip(generic_ids, order)
    }


def _perturbed(
    weights: WeightVector, rng: np.random.Generator, phase_std_rad: float = 0.60
) -> WeightVector:
    """Apply a per-sector pseudo-random phase perturbation.

    Models the fact that vendor codebooks are tuned per device family
    and end up visibly irregular compared with textbook beams.
    """
    perturbation = np.exp(1j * rng.normal(0.0, phase_std_rad, size=weights.n_elements))
    return WeightVector(weights.weights * perturbation)


def _steered_sector(
    layout: ElementLayout,
    azimuth_deg: float,
    elevation_deg: float,
    rng: np.random.Generator,
    phase_std_rad: float = 0.60,
    efficiency_spread_db: float = 3.0,
) -> WeightVector:
    """A quantized, perturbed beam steered at one direction.

    Each sector additionally draws a tuning-quality factor (up to
    ``efficiency_spread_db`` of loss): real vendor codebooks are tuned
    unevenly, which is why some measured sectors in Figure 5 clearly
    dominate their neighbourhood while others barely reach them.
    """
    ideal = WeightVector.conjugate_steering(steering_vector(layout, azimuth_deg, elevation_deg))
    quantized = _perturbed(ideal, rng, phase_std_rad).quantized(phase_bits=2).normalized()
    efficiency_scale = 10.0 ** (-rng.uniform(0.0, efficiency_spread_db) / 20.0)
    return WeightVector(quantized.weights * efficiency_scale)


def _multi_lobe_sector(
    layout: ElementLayout,
    directions: Tuple[Tuple[float, float], Tuple[float, float]],
    rng: np.random.Generator,
) -> WeightVector:
    """Superposition of two steered beams → two comparable lobes."""
    combined = np.zeros(layout.n_elements, dtype=complex)
    for azimuth_deg, elevation_deg in directions:
        combined += np.conj(steering_vector(layout, azimuth_deg, elevation_deg))
    return _perturbed(WeightVector(combined), rng, 0.25).quantized(phase_bits=2).normalized()


def _wide_sector(layout: ElementLayout, rng: np.random.Generator) -> WeightVector:
    """A wide-azimuth beam: only the two central columns radiate.

    A narrow horizontal aperture widens the azimuth beam while the full
    vertical aperture keeps elevation selectivity — gain drops at high
    elevation, giving the torus-like coverage of sector 26.
    """
    y = layout.positions_m[:, 1]
    spacing = 0.5 * layout.wavelength_m
    active = np.abs(y) < spacing  # the two columns closest to center
    uniform = WeightVector.uniform(layout.n_elements).with_element_mask(active)
    return _perturbed(uniform, rng, 0.15).quantized(phase_bits=2).normalized()


def _weak_sector(layout: ElementLayout, rng: np.random.Generator, n_active: int) -> WeightVector:
    """A badly tuned sector: few elements, incoherent phases.

    A 4 dB scale models the feed mismatch of these mis-tuned entries,
    reproducing the "low gains in all directions" of sectors 25/62.
    """
    active = np.zeros(layout.n_elements, dtype=bool)
    active[rng.choice(layout.n_elements, size=n_active, replace=False)] = True
    phases = rng.uniform(0.0, 2.0 * np.pi, size=layout.n_elements)
    weights = WeightVector(np.exp(1j * phases)).with_element_mask(active)
    quantized = weights.quantized(phase_bits=2).normalized()
    mismatch_scale = 10.0 ** (-4.0 / 20.0)
    return WeightVector(quantized.weights * mismatch_scale)


def _rx_quasi_omni(layout: ElementLayout) -> WeightVector:
    """Quasi-omni receive sector: a single center element."""
    distances = np.linalg.norm(layout.positions_m, axis=1)
    active = np.zeros(layout.n_elements, dtype=bool)
    active[int(np.argmin(distances))] = True
    return WeightVector.uniform(layout.n_elements).with_element_mask(active).normalized()


def talon_codebook(
    antenna: PhasedArray, rng: Optional[np.random.Generator] = None
) -> Codebook:
    """Build the synthetic 35-entry Talon AD7200 codebook.

    Args:
        antenna: the array the codebook is designed for (only its
            layout matters here).
        rng: source of the per-sector perturbations; defaults to a
            fixed seed so "the stock codebook" is stable across runs.
    """
    if rng is None:
        rng = np.random.default_rng(0x11AD)
    layout = antenna.layout
    generic_directions = _generic_directions(rng)

    sectors: List[Sector] = [Sector(RX_SECTOR_ID, _rx_quasi_omni(layout), kind="quasi-omni")]
    for sector_id in TALON_TX_SECTOR_IDS:
        if sector_id in _STRONG_DIRECTIONS:
            azimuth, elevation = _STRONG_DIRECTIONS[sector_id]
            # The strong sectors are the vendor's best-tuned beams.
            weights = _steered_sector(
                layout, azimuth, elevation, rng, phase_std_rad=0.20, efficiency_spread_db=0.5
            )
            kind = "strong"
        elif sector_id in _MULTI_LOBE_DIRECTIONS:
            weights = _multi_lobe_sector(layout, _MULTI_LOBE_DIRECTIONS[sector_id], rng)
            kind = "multi-lobe"
        elif sector_id in WIDE_SECTOR_IDS:
            weights = _wide_sector(layout, rng)
            kind = "wide"
        elif sector_id in _ELEVATED_DIRECTIONS:
            azimuth, elevation = _ELEVATED_DIRECTIONS[sector_id]
            weights = _steered_sector(layout, azimuth, elevation, rng)
            kind = "elevated"
        elif sector_id in WEAK_SECTOR_IDS:
            weights = _weak_sector(layout, rng, n_active=4)
            kind = "weak"
        else:
            azimuth, elevation = generic_directions[sector_id]
            weights = _steered_sector(layout, azimuth, elevation, rng)
            kind = "directive"
        sectors.append(Sector(sector_id, weights, kind=kind))
    return Codebook(sectors, rx_sector_id=RX_SECTOR_ID)


def _broad_probe_sector(
    layout: ElementLayout,
    azimuth_deg: float,
    elevation_deg: float,
    rng: np.random.Generator,
) -> WeightVector:
    """A wide beam for probing: only two element columns radiate.

    The reduced horizontal aperture roughly triples the azimuth
    beamwidth, so a handful of these cover the whole frontal range —
    exactly what the compressive correlation wants from its probes
    (overlapping, informative measurements instead of disjoint point
    samples).
    """
    y = layout.positions_m[:, 1]
    spacing = 0.5 * layout.wavelength_m
    # Three center columns: a ~1.5-wavelength horizontal aperture gives
    # ~35-40 degree beams — wide enough to overlap, narrow enough to
    # break the left/right ambiguity a 2-column aperture suffers.
    active = np.abs(y) < 1.6 * spacing
    ideal = WeightVector.conjugate_steering(
        steering_vector(layout, azimuth_deg, elevation_deg)
    ).with_element_mask(active)
    return _perturbed(ideal, rng, 0.25).quantized(phase_bits=2).normalized()


def fine_codebook(
    antenna: PhasedArray,
    n_sectors: int = 63,
    n_probing: int = 12,
    rng: Optional[np.random.Generator] = None,
    max_azimuth_deg: float = 85.0,
    max_elevation_deg: float = 28.0,
) -> Codebook:
    """A denser sector grid for future, finer-grained devices (§7).

    "Future generations are likely to demand higher directivities and
    more fine-grained beam control.  Such requirements could be
    addressed by increasing the number of implemented and predefined
    sectors" — this factory builds such a codebook up to the SSW
    field's 6-bit limit (63 TX sectors; the RX quasi-omni keeps ID 0).

    The first ``n_probing`` IDs are **broad probing sectors** (reduced
    aperture, ~3× wider beams, two elevation rows): compressive
    estimation needs probes whose patterns *overlap* the whole angular
    range, which a set of disjoint pencil beams cannot provide.  The
    remaining IDs are narrow, finely spaced data beams — the precise
    patterns §7 wants selectable "without additional training time".
    """
    if rng is None:
        rng = np.random.default_rng(0xF17E)
    if not 1 <= n_sectors <= 63:
        raise ValueError("the SSW sector field allows at most 63 TX sectors")
    if not 0 <= n_probing < n_sectors:
        raise ValueError("probing sectors must leave room for data sectors")
    layout = antenna.layout
    sectors: List[Sector] = [Sector(RX_SECTOR_ID, _rx_quasi_omni(layout), kind="quasi-omni")]
    sector_id = 1

    # Broad probing sectors: two elevation rows across the azimuth range.
    if n_probing:
        probe_rows = 2 if n_probing >= 6 else 1
        per_row = np.full(probe_rows, n_probing // probe_rows)
        per_row[: n_probing % probe_rows] += 1
        probe_elevations = np.linspace(0.0, max_elevation_deg * 0.6, probe_rows)
        for row_index in range(probe_rows):
            azimuths = np.linspace(
                -max_azimuth_deg * 0.85, max_azimuth_deg * 0.85, per_row[row_index]
            )
            for azimuth in azimuths:
                weights = _broad_probe_sector(
                    layout, float(azimuth), float(probe_elevations[row_index]), rng
                )
                sectors.append(Sector(sector_id, weights, kind="probe"))
                sector_id += 1

    # Narrow data sectors tiling azimuth × elevation.
    n_data = n_sectors - n_probing
    n_rows = max(1, min(4, n_data // 12))
    elevations = np.linspace(0.0, max_elevation_deg, n_rows)
    per_row = np.full(n_rows, n_data // n_rows)
    per_row[: n_data % n_rows] += 1
    for row_index in range(n_rows):
        azimuths = np.linspace(-max_azimuth_deg, max_azimuth_deg, per_row[row_index])
        for azimuth in azimuths:
            weights = _steered_sector(
                layout,
                float(azimuth),
                float(elevations[row_index]),
                rng,
                phase_std_rad=0.35,
                efficiency_spread_db=1.5,
            )
            sectors.append(Sector(sector_id, weights, kind="fine"))
            sector_id += 1
    return Codebook(sectors, rx_sector_id=RX_SECTOR_ID)


def probing_sector_ids(codebook: Codebook) -> List[int]:
    """IDs of the dedicated broad probing sectors of a fine codebook."""
    return [sector.sector_id for sector in codebook if sector.kind == "probe"]
