"""Baselines: exhaustive sweep, oracle, hierarchical search, random beams."""

from ..core.selector import SectorSweepSelector  # the standard's baseline
from .hierarchical import HierarchicalOutcome, HierarchicalSearch
from .oracle import OracleSelector
from .random_beams import random_beam_codebook, theoretical_pattern_table

__all__ = [
    "SectorSweepSelector",
    "HierarchicalOutcome",
    "HierarchicalSearch",
    "OracleSelector",
    "random_beam_codebook",
    "theoretical_pattern_table",
]
