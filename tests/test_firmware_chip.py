"""Unit tests for the chip model, ring buffer, WMI, and patches."""

import numpy as np
import pytest

from repro.channel import MeasurementModel
from repro.firmware import (
    QCA9500,
    RingBuffer,
    WmiClearSectorOverride,
    WmiDrainSweepReports,
    WmiError,
    WmiResetSweepState,
    WmiSetSectorOverride,
    PatchFramework,
    sector_override_patch,
    signal_strength_extraction_patch,
)
from repro.firmware.patches import Patch


class TestRingBuffer:
    def test_fifo_order(self):
        buffer = RingBuffer(4)
        for value in range(3):
            buffer.push(value)
        assert buffer.drain() == [0, 1, 2]
        assert len(buffer) == 0

    def test_overwrites_oldest_when_full(self):
        buffer = RingBuffer(3)
        for value in range(5):
            buffer.push(value)
        assert buffer.peek_all() == [2, 3, 4]
        assert buffer.dropped_count == 2

    def test_peek_does_not_consume(self):
        buffer = RingBuffer(2)
        buffer.push("a")
        assert buffer.peek_all() == ["a"]
        assert len(buffer) == 1

    def test_clear(self):
        buffer = RingBuffer(2)
        buffer.push(1)
        buffer.clear()
        assert len(buffer) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


@pytest.fixture
def chip(codebook) -> QCA9500:
    return QCA9500(codebook, MeasurementModel.noiseless())


class TestStockChip:
    def test_stock_selection_is_argmax(self, chip, rng):
        chip.start_sweep()
        chip.process_ssw_frame(1, 34, 3.0, rng)
        chip.process_ssw_frame(2, 33, 8.0, rng)
        chip.process_ssw_frame(3, 32, 5.0, rng)
        assert chip.stock_best_sector() == 2

    def test_empty_sweep_keeps_previous_selection(self, chip, rng):
        chip.start_sweep()
        chip.process_ssw_frame(7, 10, 9.0, rng)
        assert chip.select_feedback_sector() == 7
        chip.start_sweep()  # nothing received
        assert chip.select_feedback_sector() == 7

    def test_sweep_index_increments(self, chip):
        initial = chip.sweep_index
        chip.start_sweep()
        chip.start_sweep()
        assert chip.sweep_index == initial + 2

    def test_missed_frame_returns_none(self, codebook, rng):
        model = MeasurementModel()  # default has a decode floor
        chip = QCA9500(codebook, model)
        chip.start_sweep()
        assert chip.process_ssw_frame(1, 0, -40.0, rng) is None
        assert chip.current_sweep_reports() == []

    def test_stock_wmi_reset(self, chip, rng):
        chip.start_sweep()
        chip.process_ssw_frame(5, 0, 9.0, rng)
        chip.handle_wmi(WmiResetSweepState())
        assert chip.current_sweep_reports() == []
        assert chip.select_feedback_sector() == 1  # default sector

    def test_custom_wmi_rejected_without_patch(self, chip):
        with pytest.raises(WmiError):
            chip.handle_wmi(WmiDrainSweepReports())
        with pytest.raises(WmiError):
            chip.handle_wmi(WmiSetSectorOverride(5))


class TestPatches:
    def test_extraction_patch_fills_drainable_buffer(self, chip, rng):
        framework = PatchFramework(chip)
        framework.install(signal_strength_extraction_patch())
        chip.start_sweep()
        chip.process_ssw_frame(4, 31, 7.0, rng)
        chip.process_ssw_frame(9, 30, 2.0, rng)
        reports = chip.handle_wmi(WmiDrainSweepReports())
        assert [report.sector_id for report in reports] == [4, 9]
        assert chip.handle_wmi(WmiDrainSweepReports()) == []  # drained

    def test_override_patch_controls_feedback(self, chip, rng):
        framework = PatchFramework(chip)
        framework.install(sector_override_patch())
        chip.start_sweep()
        chip.process_ssw_frame(2, 1, 9.0, rng)
        assert chip.select_feedback_sector() == 2
        chip.handle_wmi(WmiSetSectorOverride(13))
        assert chip.select_feedback_sector() == 13
        chip.handle_wmi(WmiClearSectorOverride())
        assert chip.select_feedback_sector() == 2

    def test_override_validates_sector_exists(self, chip):
        PatchFramework(chip).install(sector_override_patch())
        with pytest.raises(ValueError):
            chip.handle_wmi(WmiSetSectorOverride(40))  # undefined ID

    def test_patch_images_written_to_patch_area(self, chip):
        framework = PatchFramework(chip)
        patch = signal_strength_extraction_patch()
        address = framework.install(patch)
        start, end = chip.memory.patch_area("ucode")
        assert start <= address < end
        assert chip.memory.read(address, 8) == patch.image[:8]

    def test_duplicate_patch_rejected(self, chip):
        framework = PatchFramework(chip)
        framework.install(sector_override_patch())
        with pytest.raises(ValueError):
            framework.install(sector_override_patch())

    def test_patch_area_exhaustion(self, chip):
        framework = PatchFramework(chip)
        start, end = chip.memory.patch_area("ucode")
        huge = Patch(
            name="huge",
            processor="ucode",
            image=b"\x00" * (end - start + 1),
            install_hooks=lambda _chip: None,
        )
        with pytest.raises(ValueError):
            framework.install(huge)

    def test_patch_address_lookup(self, chip):
        framework = PatchFramework(chip)
        framework.install(sector_override_patch())
        assert framework.patch_address("sector-override") >= 0x8F5000
        with pytest.raises(KeyError):
            framework.patch_address("not-installed")

    def test_reports_capacity_overflow(self, codebook, rng):
        chip = QCA9500(codebook, MeasurementModel.noiseless())
        framework = PatchFramework(chip)
        framework.install(signal_strength_extraction_patch(buffer_capacity=3))
        chip.start_sweep()
        for sector_id in (1, 2, 3, 4, 5):
            chip.process_ssw_frame(sector_id, 0, 5.0, rng)
        reports = chip.handle_wmi(WmiDrainSweepReports())
        assert [report.sector_id for report in reports] == [3, 4, 5]
