"""Angle arithmetic helpers.

All public APIs in :mod:`repro` exchange angles in **degrees**; radians
are used only inside numeric kernels.  Azimuth angles live on the
circle and are wrapped to ``(-180, 180]``; elevation angles live on the
closed interval ``[-90, 90]`` and are *not* wrapped (an elevation
outside that range indicates a caller bug and raises).
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "wrap_azimuth",
    "azimuth_difference",
    "validate_elevation",
    "angular_distance",
    "deg2rad",
    "rad2deg",
]


def deg2rad(angle_deg: ArrayLike) -> ArrayLike:
    """Convert degrees to radians (thin, explicit wrapper)."""
    return np.deg2rad(angle_deg)


def rad2deg(angle_rad: ArrayLike) -> ArrayLike:
    """Convert radians to degrees (thin, explicit wrapper)."""
    return np.rad2deg(angle_rad)


def wrap_azimuth(azimuth_deg: ArrayLike) -> ArrayLike:
    """Wrap azimuth angles into the interval ``(-180, 180]``.

    >>> wrap_azimuth(190.0)
    -170.0
    >>> wrap_azimuth(-180.0)
    180.0
    """
    wrapped = -(-(np.asarray(azimuth_deg, dtype=float) - 180.0) % 360.0) + 180.0
    if np.ndim(azimuth_deg) == 0:
        return float(wrapped)
    return wrapped


def azimuth_difference(first_deg: ArrayLike, second_deg: ArrayLike) -> ArrayLike:
    """Signed smallest difference ``first - second`` on the circle.

    The result lies in ``(-180, 180]`` so that
    ``abs(azimuth_difference(a, b))`` is the angular error between two
    azimuth readings regardless of wrapping.
    """
    return wrap_azimuth(np.asarray(first_deg, dtype=float) - np.asarray(second_deg, dtype=float))


def validate_elevation(elevation_deg: ArrayLike) -> ArrayLike:
    """Return the input if all elevations are within ``[-90, 90]``.

    Raises:
        ValueError: if any elevation lies outside the valid range.
    """
    elevation = np.asarray(elevation_deg, dtype=float)
    if np.any(elevation < -90.0) or np.any(elevation > 90.0):
        raise ValueError(f"elevation out of range [-90, 90]: {elevation_deg!r}")
    return elevation_deg


def angular_distance(
    azimuth_a_deg: ArrayLike,
    elevation_a_deg: ArrayLike,
    azimuth_b_deg: ArrayLike,
    elevation_b_deg: ArrayLike,
) -> ArrayLike:
    """Great-circle distance in degrees between two directions.

    Uses the numerically stable haversine formulation, treating
    elevation as latitude and azimuth as longitude.
    """
    az_a = np.deg2rad(np.asarray(azimuth_a_deg, dtype=float))
    el_a = np.deg2rad(np.asarray(elevation_a_deg, dtype=float))
    az_b = np.deg2rad(np.asarray(azimuth_b_deg, dtype=float))
    el_b = np.deg2rad(np.asarray(elevation_b_deg, dtype=float))
    sin_del = np.sin((el_b - el_a) / 2.0)
    sin_daz = np.sin((az_b - az_a) / 2.0)
    h = sin_del**2 + np.cos(el_a) * np.cos(el_b) * sin_daz**2
    distance = 2.0 * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))
    result = np.rad2deg(distance)
    if np.ndim(result) == 0:
        return float(result)
    return result
