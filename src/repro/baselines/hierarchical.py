"""Hierarchical beam search baseline (Hur et al. [15], paper §1/§8).

Hierarchical protocols probe a first level of wide beams and then
refine inside the winning group.  The Talon's flat codebook has no
built-in hierarchy, so the baseline constructs one from the measured
patterns: sectors are clustered by the azimuth of their strongest lobe,
each cluster is represented by the member covering the cluster best,
and the search probes representatives first, then the winning cluster's
members.  The complexity is ``O(n_groups + max_group_size)`` probes per
training, but it needs **two** feedback rounds — the overhead the paper
holds against hierarchical schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.measurements import ProbeMeasurement
from ..core.selector import SelectionResult
from ..core.tracking import MeasureFn
from ..mac.timing import FEEDBACK_OVERHEAD_US, SSW_FRAME_TIME_US
from ..measurement.patterns import PatternTable

__all__ = ["HierarchicalSearch", "HierarchicalOutcome"]


@dataclass(frozen=True)
class HierarchicalOutcome:
    """Result of one two-stage hierarchical training."""

    result: SelectionResult
    probes_used: int
    n_rounds: int

    @property
    def training_time_us(self) -> float:
        """Mutual training time: both sides probe, one overhead per round."""
        return 2.0 * self.probes_used * SSW_FRAME_TIME_US + self.n_rounds * FEEDBACK_OVERHEAD_US


class HierarchicalSearch:
    """Two-level beam search over a flat measured codebook."""

    def __init__(self, pattern_table: PatternTable, n_groups: int = 6):
        """
        Args:
            pattern_table: measured patterns (cluster + represent).
            n_groups: number of first-level clusters.
        """
        if n_groups < 2:
            raise ValueError("need at least two groups")
        candidate_ids = [s for s in pattern_table.sector_ids if s != 0]
        if n_groups > len(candidate_ids):
            raise ValueError("more groups than sectors")
        self.pattern_table = pattern_table
        self.groups = self._build_groups(candidate_ids, n_groups)
        self._initial_selection = candidate_ids[0]
        self._last_selection = self._initial_selection

    @property
    def initial_selection(self) -> int:
        """The sector a fresh association falls back to."""
        return self._initial_selection

    def reset(self) -> None:
        """Forget the last selection (fresh-association state)."""
        self._last_selection = self._initial_selection

    def _peak_azimuth(self, sector_id: int) -> float:
        pattern = self.pattern_table.pattern(sector_id)
        el_index, az_index = np.unravel_index(int(np.argmax(pattern)), pattern.shape)
        return float(self.pattern_table.grid.azimuths_deg[az_index])

    def _build_groups(self, sector_ids: Sequence[int], n_groups: int) -> Dict[int, List[int]]:
        """Cluster sectors into contiguous azimuth bins.

        Returns a map representative-sector → group members.
        """
        peaks = {sector_id: self._peak_azimuth(sector_id) for sector_id in sector_ids}
        ordered = sorted(sector_ids, key=lambda s: peaks[s])
        bins = np.array_split(np.asarray(ordered), n_groups)
        groups: Dict[int, List[int]] = {}
        for members in bins:
            members = [int(m) for m in members]
            if not members:
                continue
            # Representative: the member with the widest strong coverage
            # (largest mean gain), i.e. the best "wide" stand-in.
            mean_gain = {
                member: float(np.mean(self.pattern_table.pattern(member)))
                for member in members
            }
            representative = max(members, key=lambda m: mean_gain[m])
            groups[representative] = members
        return groups

    def run(self, measure: MeasureFn, rng: np.random.Generator) -> HierarchicalOutcome:
        """Execute the two probing rounds against a measure callable."""
        representatives = list(self.groups)
        first_round = measure(representatives, rng)
        probes_used = len(representatives)
        if not first_round:
            return HierarchicalOutcome(
                result=SelectionResult(sector_id=self._last_selection, fallback=True),
                probes_used=probes_used,
                n_rounds=1,
            )
        best_representative = max(first_round, key=lambda m: m.snr_db).sector_id
        members = self.groups[best_representative]

        second_round = measure(members, rng)
        probes_used += len(members)
        pool: List[ProbeMeasurement] = list(second_round) or list(first_round)
        best = max(pool, key=lambda m: m.snr_db)
        self._last_selection = best.sector_id
        return HierarchicalOutcome(
            result=SelectionResult(sector_id=best.sector_id),
            probes_used=probes_used,
            n_rounds=2,
        )
