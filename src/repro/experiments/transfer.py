"""Extension experiment: cross-device pattern transfer (§4.5 caveat).

"Our measurements capture the radiation characteristics for one
particular device.  Although we have confirmed that different devices
exhibit similar patterns with slight variations, other Talon AD7200
devices might behave differently."

This experiment quantifies that caveat: a *second* device (same
codebook design, different per-element hardware flaws) runs CSS in the
conference room using (a) its **own** chamber-measured patterns and
(b) the patterns measured on the **first** device.  The gap tells a
practitioner whether one lab campaign can serve a whole fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..channel.environment import conference_room
from ..core.compressive import CompressiveSectorSelector
from ..geometry.angles import azimuth_difference
from ..measurement.campaign import CampaignConfig, PatternMeasurementCampaign
from ..phased_array.array import PhasedArray
from ..phased_array.talon import talon_codebook
from .common import build_testbed, random_probe_columns

__all__ = ["TransferConfig", "TransferResult", "run_pattern_transfer"]


@dataclass(frozen=True)
class TransferConfig:
    seed: int = 29
    second_device_seed: int = 4242
    n_probes: int = 14
    azimuth_step_deg: float = 10.0
    n_sweeps: int = 6


@dataclass
class TransferResult:
    azimuth_error_deg: Dict[str, float]
    snr_loss_db: Dict[str, float]

    def format_rows(self) -> List[str]:
        rows = [
            "pattern transfer (extension): whose table does device B use?",
            "table source        | az err [deg] | SNR loss [dB]",
        ]
        for name in self.azimuth_error_deg:
            rows.append(
                f"{name:19s} | {self.azimuth_error_deg[name]:12.2f} | "
                f"{self.snr_loss_db[name]:13.2f}"
            )
        return rows


def run_pattern_transfer(config: TransferConfig = TransferConfig()) -> TransferResult:
    """Evaluate CSS on a second device with own vs. foreign patterns."""
    testbed = build_testbed()
    rng = np.random.default_rng(config.seed)

    # Device B: identical codebook design, different hardware flaws.
    device_b = PhasedArray.talon(np.random.default_rng(config.second_device_seed))
    codebook_b = talon_codebook(device_b)
    campaign = PatternMeasurementCampaign(
        device_b,
        codebook_b,
        reference_antenna=testbed.ref_antenna,
        reference_codebook=testbed.ref_codebook,
        measurement_model=testbed.measurement_model,
    )
    grid = testbed.pattern_table.grid
    own_table = campaign.run(
        CampaignConfig(
            azimuths_deg=grid.azimuths_deg,
            elevations_deg=grid.elevations_deg,
            n_sweeps=3,
        ),
        rng,
    )

    # Record sweeps with device B on the rotation head.
    from dataclasses import replace

    testbed_b = replace(testbed, dut_antenna=device_b, dut_codebook=codebook_b)
    from .common import record_directions

    azimuths = np.arange(-60.0, 60.0 + 1e-9, config.azimuth_step_deg)
    recordings = record_directions(
        testbed_b, conference_room(6.0), azimuths, [0.0], config.n_sweeps, rng
    )
    tx_ids = codebook_b.tx_sector_ids

    tables = {
        "own (device B)": own_table,
        "foreign (device A)": testbed.pattern_table,
    }
    selectors = {name: CompressiveSectorSelector(table) for name, table in tables.items()}
    errors: Dict[str, List[float]] = {name: [] for name in tables}
    losses: Dict[str, List[float]] = {name: [] for name in tables}
    # Paired comparison: both tables judge the *same* probe draws.  The
    # draws are collected once (scalar order), then each selector
    # replays every trial in sequence via one select_batch — identical
    # to the interleaved scalar loop because selection consumes no rng
    # and each selector's state only depends on its own trial sequence.
    column_of = {sector_id: column for column, sector_id in enumerate(tx_ids)}
    id_row = np.asarray(tx_ids, dtype=np.intp)
    trial_ids: List[np.ndarray] = []
    trial_snr: List[np.ndarray] = []
    trial_rssi: List[np.ndarray] = []
    trial_mask: List[np.ndarray] = []
    optima: List[float] = []
    truth_rows: List[np.ndarray] = []
    truth_azimuths: List[float] = []
    for recording in recordings:
        present, snr, rssi = recording.packed_sweeps(tx_ids)
        optimal = recording.optimal_snr_db()
        for sweep_index in range(len(recording.sweeps)):
            columns = random_probe_columns(len(tx_ids), config.n_probes, rng)
            trial_ids.append(id_row[columns])
            trial_snr.append(snr[sweep_index, columns])
            trial_rssi.append(rssi[sweep_index, columns])
            trial_mask.append(present[sweep_index, columns])
            optima.append(optimal)
            truth_rows.append(recording.true_snr_db)
            truth_azimuths.append(recording.azimuth_deg)
    for name, selector in selectors.items():
        results = selector.select_batch(
            np.stack(trial_ids),
            snr_db=np.stack(trial_snr),
            rssi_dbm=np.stack(trial_rssi),
            mask=np.stack(trial_mask),
        )
        for result, optimal, truth, truth_azimuth in zip(
            results, optima, truth_rows, truth_azimuths
        ):
            if result.estimate is not None:
                errors[name].append(
                    abs(azimuth_difference(result.estimate.azimuth_deg, truth_azimuth))
                )
            losses[name].append(optimal - truth[column_of[result.sector_id]])

    return TransferResult(
        azimuth_error_deg={name: float(np.mean(errors[name])) for name in tables},
        snr_loss_db={name: float(np.mean(losses[name])) for name in tables},
    )
