"""Zero-copy publication of precomputed selection kernels (DESIGN.md §12).

Pool workers used to rebuild every policy from its spec: the testbed
comes almost for free (fork inherits the memoized builder), but a CSS
selector then re-samples two full pattern matrices on the search grid
— ~20 ms of bilinear interpolation *per worker per policy*, plus a
private copy of arrays the parent already holds.

This module moves those arrays into one POSIX shared-memory segment
per (testbed, policy) configuration, published **once** by the
supervising process and attached **by name** by every worker:

* :class:`KernelPublisher` (parent side) lays the arrays out in a
  single :class:`multiprocessing.shared_memory.SharedMemory` segment
  (64-byte-aligned offsets) and hands out a picklable
  :class:`SharedKernelManifest` describing the layout.  Segments are
  memoized per publication key, so repeated runs over the same spec —
  the service's warm-pool case — publish nothing new.
* :func:`attach` (worker side) maps the segment and returns read-only
  ``np.ndarray`` views over the shared buffer.  The views are byte
  copies of exactly what the worker's own construction would compute
  (construction is deterministic in the spec), so shared-kernel
  workers remain bit-for-bit identical to rebuild-from-spec workers.

Lifecycle: the parent owns every segment and unlinks them all in
:meth:`KernelPublisher.close` (the runner's ``close()``); workers only
ever ``close()`` their mapping, never unlink.  Under the fork start
method parent and workers share one :mod:`multiprocessing.resource_tracker`
process, so a worker's attach-time registration is a no-op set-add on
the name the parent already registered at create — worker exits (even
``os._exit`` crashes) never touch the segment, and the single
registration means the tracker reaps the segment if the supervising
process dies without ``close()`` (SIGKILL), so nothing leaks in
``/dev/shm`` even on the crash paths.
"""

from __future__ import annotations

import logging
import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "SharedKernelManifest",
    "KernelPublisher",
    "attach",
    "leaked_segments",
    "sweep_leaked_segments",
]

_LOGGER = logging.getLogger(__name__)

#: Offset alignment for each array in a segment; keeps every view on a
#: cache-line boundary regardless of the preceding array's size.
_ALIGN = 64

#: Prefix of every segment this module creates (greppable in /dev/shm).
_SEGMENT_PREFIX = "repro-kernels-"

#: Publisher-side cap on live segments.  Long-lived runners (the
#: service) publish one kernel segment per policy configuration and one
#: block segment per (spec, policy, execute-call); beyond the cap the
#: oldest segment is unlinked FIFO.  Eviction happens only inside
#: ``publish`` — never while a round is in flight — so a manifest
#: handed to the current dispatch always outlives it.
_MAX_SEGMENTS = 128

#: Worker-side cap on cached attachments, bounding mapped pages when a
#: long-lived pool serves many distinct specs.
_MAX_ATTACHED = 128


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SharedKernelManifest:
    """Picklable description of one published segment's layout.

    ``entries`` maps array name → ``(offset, shape, dtype-str)``; the
    manifest travels to workers inside task submissions (a few hundred
    bytes) instead of the arrays themselves (hundreds of kilobytes,
    per block, per attempt).
    """

    segment: str
    entries: Mapping[str, Tuple[int, Tuple[int, ...], str]]


def _revive_resource_tracker() -> None:
    """Respawn multiprocessing's resource tracker after it died.

    Creating a segment registers it with the tracker over a pipe; if
    the tracker process was killed (OOM killer, an over-eager
    supervisor, a chaos campaign), every subsequent registration gets
    EPIPE and would fail the run even though shared memory itself is
    fine.  Forgetting the dead pipe makes ``ensure_running`` launch a
    fresh tracker.
    """
    from multiprocessing import resource_tracker

    tracker = resource_tracker._resource_tracker
    with tracker._lock:
        if tracker._fd is not None:
            try:
                os.close(tracker._fd)
            except OSError:  # pragma: no cover - already closed
                pass
            tracker._fd = None
    tracker.ensure_running()


class KernelPublisher:
    """Parent-side registry of published shared-memory segments."""

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._manifests: Dict[str, SharedKernelManifest] = {}

    def __len__(self) -> int:
        return len(self._segments)

    def manifest(self, key: str) -> Optional[SharedKernelManifest]:
        """The manifest published under ``key``, if any."""
        return self._manifests.get(key)

    def publish(
        self, key: str, arrays: Mapping[str, np.ndarray]
    ) -> SharedKernelManifest:
        """Copy ``arrays`` into one shared segment, memoized on ``key``.

        Returns the existing manifest when ``key`` was already
        published — repeated executes over the same (testbed, policy)
        pair, or repeated service submissions, cost a dict hit.
        """
        existing = self._manifests.get(key)
        if existing is not None:
            return existing
        entries: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        offset = 0
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset = _aligned(offset)
            entries[name] = (offset, tuple(array.shape), array.dtype.str)
            offset += array.nbytes
        try:
            segment = shared_memory.SharedMemory(
                create=True,
                size=max(offset, 1),
                name=f"{_SEGMENT_PREFIX}{secrets.token_hex(8)}",
            )
        except BrokenPipeError:
            _revive_resource_tracker()
            segment = shared_memory.SharedMemory(
                create=True,
                size=max(offset, 1),
                name=f"{_SEGMENT_PREFIX}{secrets.token_hex(8)}",
            )
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            start, shape, dtype = entries[name]
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=start)
            view[...] = array
        manifest = SharedKernelManifest(segment=segment.name, entries=dict(entries))
        self._segments[key] = segment
        self._manifests[key] = manifest
        while len(self._segments) > _MAX_SEGMENTS:
            oldest = next(iter(self._segments))
            evicted = self._segments.pop(oldest)
            self._manifests.pop(oldest, None)
            try:
                evicted.close()
                evicted.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass
        _LOGGER.debug(
            "published %d shared kernel array(s) (%d bytes) as %s",
            len(entries),
            segment.size,
            segment.name,
        )
        return manifest

    def close(self) -> None:
        """Unmap and unlink every published segment (idempotent)."""
        segments, self._segments = self._segments, {}
        self._manifests = {}
        for segment in segments.values():
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass


# ----------------------------------------------------------------------
# Worker side.
# ----------------------------------------------------------------------

#: Per-process cache of attached segments: segment name → (mapping,
#: views).  Keeping the SharedMemory object referenced keeps the buffer
#: mapped for the lifetime of the views.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, Dict[str, np.ndarray]]] = {}


def attach(manifest: SharedKernelManifest) -> Dict[str, np.ndarray]:
    """Map a published segment and return read-only array views.

    Safe to call repeatedly — each process maps a segment once and
    reuses the views.  Raises ``FileNotFoundError`` when the segment
    no longer exists (the publisher closed); callers degrade to
    rebuilding from the spec.
    """
    cached = _ATTACHED.get(manifest.segment)
    if cached is not None:
        return cached[1]
    segment = shared_memory.SharedMemory(name=manifest.segment, create=False)
    views: Dict[str, np.ndarray] = {}
    for name, (offset, shape, dtype) in manifest.entries.items():
        view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=offset)
        view.flags.writeable = False
        views[name] = view
    _ATTACHED[manifest.segment] = (segment, views)
    while len(_ATTACHED) > _MAX_ATTACHED:
        oldest = next(iter(_ATTACHED))
        evicted, _views = _ATTACHED.pop(oldest)
        try:
            evicted.close()
        except BufferError:  # pragma: no cover - live views still held
            pass
    return views


def leaked_segments() -> List[str]:
    """Names of ``repro-kernels-*`` segments present in ``/dev/shm``.

    Segment names are fresh random tokens per publication, so anything
    on disk when no supervising process is alive is a leak — the
    resource tracker normally reaps them even through SIGKILL, but a
    tracker killed alongside its supervisor (the chaos harness's
    kill-the-process-group case) leaves the files behind.  Returns an
    empty list on platforms without a ``/dev/shm``.
    """
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(path.name for path in root.glob(f"{_SEGMENT_PREFIX}*"))


def sweep_leaked_segments() -> List[str]:
    """Unlink every leaked ``repro-kernels-*`` segment; return the names.

    Startup-time GC for the service: call this only when no other
    publisher can be alive on the host (one service instance per
    state dir).  A live segment swept by mistake degrades to workers
    rebuilding kernels from the spec — bit-identical, just slower —
    so the failure mode of an over-eager sweep is wasted work, never
    wrong results.
    """
    reclaimed: List[str] = []
    for name in leaked_segments():
        try:
            os.unlink(Path("/dev/shm") / name)
        except FileNotFoundError:  # pragma: no cover - raced with reaper
            continue
        reclaimed.append(name)
    if reclaimed:
        _LOGGER.warning(
            "swept %d leaked shared-memory segment(s): %s",
            len(reclaimed),
            ", ".join(reclaimed),
        )
    return reclaimed


def detach_all() -> None:
    """Drop every cached attachment (worker cache-reset path).

    Mappings whose views are still referenced elsewhere stay mapped
    (``close`` raises ``BufferError`` and the segment object is simply
    dropped); a later :func:`attach` re-maps from scratch.
    """
    attached = dict(_ATTACHED)
    _ATTACHED.clear()
    for segment, _views in attached.values():
        try:
            segment.close()
        except BufferError:  # pragma: no cover - live views still held
            pass
