"""Failure injection: the system under pathological conditions.

Real deployments hit these: firmware that reports nothing for whole
sweeps, saturated readings, sweeps of identical values, hostile frame
bytes, overflowing ring buffers mid-session.  Nothing may crash, and
degradation must be graceful and observable.
"""

import numpy as np
import pytest

from repro.channel import MeasurementModel
from repro.core import (
    AngleEstimator,
    CompressiveSectorSelector,
    ProbeMeasurement,
    SectorSweepSelector,
    SectorTracker,
)
from repro.firmware import (
    QCA9500,
    PatchFramework,
    WmiDrainSweepReports,
    signal_strength_extraction_patch,
)
from repro.mac import decode_frame


class TestSilentFirmware:
    """§5: "sometimes the firmware does not report any measurements"."""

    def test_selectors_survive_consecutive_empty_sweeps(self, pattern_table):
        ssw = SectorSweepSelector(initial_sector_id=5)
        css = CompressiveSectorSelector(pattern_table, initial_sector_id=5)
        for _ in range(10):
            assert ssw.select([]).sector_id == 5
            assert css.select([]).sector_id == 5

    def test_tracker_survives_dead_channel(self, pattern_table, rng):
        tracker = SectorTracker(CompressiveSectorSelector(pattern_table), n_probes=14)
        steps = tracker.run(lambda ids, generator: [], 5, rng)
        assert len(steps) == 5
        assert all(step.result.fallback for step in steps)

    def test_total_dropout_model(self, codebook, rng):
        model = MeasurementModel(report_dropout_probability=0.99, decode_threshold_db=-1e9)
        chip = QCA9500(codebook, model)
        chip.start_sweep()
        for sector_id in codebook.tx_sector_ids:
            chip.process_ssw_frame(sector_id, 0, 10.0, rng)
        # Nearly everything dropped; the chip still returns a sector.
        assert chip.select_feedback_sector() in codebook.sector_ids


class TestDegenerateMeasurements:
    def test_all_identical_snr_values(self, pattern_table):
        """Saturated sweeps (every probe clipped at 12 dB) stay sane."""
        selector = CompressiveSectorSelector(pattern_table)
        sector_ids = selector.candidate_sector_ids[:14]
        measurements = [ProbeMeasurement(s, 12.0, -59.5) for s in sector_ids]
        result = selector.select(measurements)
        assert result.sector_id in selector.candidate_sector_ids

    def test_all_floor_values(self, pattern_table):
        selector = CompressiveSectorSelector(pattern_table)
        sector_ids = selector.candidate_sector_ids[:14]
        measurements = [ProbeMeasurement(s, -7.0, -78.5) for s in sector_ids]
        result = selector.select(measurements)
        assert result.sector_id in selector.candidate_sector_ids

    def test_single_severe_outlier_dominating(self, pattern_table):
        """One +19 dB lie among floor values must not crash anything."""
        selector = CompressiveSectorSelector(pattern_table)
        sector_ids = selector.candidate_sector_ids[:10]
        measurements = [ProbeMeasurement(s, -7.0, -78.5) for s in sector_ids]
        measurements[3] = ProbeMeasurement(sector_ids[3], 12.0, -78.5)
        result = selector.select(measurements)
        assert result.sector_id in selector.candidate_sector_ids

    def test_estimator_with_two_probes_minimum(self, pattern_table):
        estimator = AngleEstimator(pattern_table)
        sector_ids = [s for s in pattern_table.sector_ids if s != 0][:2]
        estimate = estimator.estimate(
            [ProbeMeasurement(s, 5.0, -66.5) for s in sector_ids]
        )
        assert np.isfinite(estimate.correlation)


class TestHostileFrameBytes:
    def test_decoder_rejects_truncations(self):
        from repro.mac import BeaconFrame, station_mac

        wire = BeaconFrame(src=station_mac(1), sector_id=3, cdown=29).encode()
        for cut in range(1, len(wire)):
            with pytest.raises(ValueError):
                decode_frame(wire[:cut])

    def test_decoder_rejects_random_garbage(self, rng):
        for _ in range(50):
            length = int(rng.integers(0, 40))
            blob = bytes(rng.integers(0, 256, size=length, dtype=np.uint8))
            # Either decodes to a valid frame type or raises ValueError;
            # nothing else is acceptable.
            try:
                frame = decode_frame(blob)
            except ValueError:
                continue
            assert frame is not None


class TestRingBufferPressure:
    def test_many_sweeps_without_draining(self, codebook, rng):
        """A slow host loses old reports but never newer ones."""
        chip = QCA9500(codebook, MeasurementModel.noiseless())
        framework = PatchFramework(chip)
        framework.install(signal_strength_extraction_patch(buffer_capacity=40))
        for sweep in range(5):
            chip.start_sweep()
            for sector_id in codebook.tx_sector_ids:
                chip.process_ssw_frame(sector_id, 0, 5.0, rng)
        reports = chip.handle_wmi(WmiDrainSweepReports())
        assert len(reports) == 40
        # The survivors are the most recent sweep's reports.
        assert all(report.sweep_index >= 4 for report in reports[-34:])

    def test_drain_is_idempotent_when_empty(self, codebook):
        chip = QCA9500(codebook, MeasurementModel.noiseless())
        PatchFramework(chip).install(signal_strength_extraction_patch())
        assert chip.handle_wmi(WmiDrainSweepReports()) == []
        assert chip.handle_wmi(WmiDrainSweepReports()) == []


class TestNumericalEdges:
    def test_extreme_snr_inputs(self, pattern_table):
        selector = CompressiveSectorSelector(pattern_table)
        sector_ids = selector.candidate_sector_ids[:6]
        for value in (-1e6, 1e6):
            measurements = [ProbeMeasurement(s, value, value) for s in sector_ids]
            result = selector.select(measurements)
            assert result.sector_id in selector.candidate_sector_ids

    def test_gain_queries_far_outside_grid(self, pattern_table):
        value = pattern_table.gain(63, 500.0, 500.0)
        assert np.isfinite(value)
