"""Unit tests for device orientations."""

import numpy as np
import pytest

from repro.geometry import Orientation, direction_vector, rotation_matrix_y, rotation_matrix_z


class TestRotationMatrices:
    def test_z_rotation_moves_x_to_y(self):
        rotated = rotation_matrix_z(90.0) @ np.array([1.0, 0.0, 0.0])
        np.testing.assert_allclose(rotated, [0.0, 1.0, 0.0], atol=1e-12)

    def test_y_rotation_pitches_boresight_up(self):
        rotated = rotation_matrix_y(30.0) @ np.array([1.0, 0.0, 0.0])
        assert rotated[2] == pytest.approx(np.sin(np.deg2rad(30.0)))
        assert rotated[0] == pytest.approx(np.cos(np.deg2rad(30.0)))

    def test_orthonormal(self):
        for matrix in (rotation_matrix_z(37.0), rotation_matrix_y(-81.0)):
            np.testing.assert_allclose(matrix @ matrix.T, np.eye(3), atol=1e-12)
            assert np.linalg.det(matrix) == pytest.approx(1.0)


class TestOrientation:
    def test_identity_orientation(self):
        orientation = Orientation()
        np.testing.assert_allclose(orientation.boresight_world, [1.0, 0.0, 0.0], atol=1e-12)

    def test_yaw_moves_boresight(self):
        orientation = Orientation(yaw_deg=90.0)
        np.testing.assert_allclose(orientation.boresight_world, [0.0, 1.0, 0.0], atol=1e-12)

    def test_pitch_moves_boresight_up(self):
        orientation = Orientation(pitch_deg=45.0)
        assert orientation.boresight_world[2] == pytest.approx(np.sin(np.pi / 4))

    def test_world_to_device_inverts_device_to_world(self):
        orientation = Orientation(yaw_deg=33.0, pitch_deg=-12.0)
        vector = direction_vector(25.0, 10.0)
        roundtrip = orientation.world_to_device(orientation.device_to_world(vector))
        np.testing.assert_allclose(roundtrip, vector, atol=1e-12)

    def test_yawed_device_sees_world_boresight_at_negative_azimuth(self):
        # Head yawed +30: the world +x direction appears at device -30.
        orientation = Orientation(yaw_deg=30.0)
        azimuth, elevation = orientation.world_direction_in_device_frame(0.0, 0.0)
        assert azimuth == pytest.approx(-30.0)
        assert elevation == pytest.approx(0.0, abs=1e-9)

    def test_pitched_device_sees_horizon_at_negative_elevation(self):
        orientation = Orientation(pitch_deg=20.0)
        _, elevation = orientation.world_direction_in_device_frame(0.0, 0.0)
        assert elevation == pytest.approx(-20.0)

    def test_device_direction_in_world_frame_roundtrip(self):
        orientation = Orientation(yaw_deg=-50.0, pitch_deg=15.0)
        world = orientation.device_direction_in_world_frame(10.0, 5.0)
        device = orientation.world_direction_in_device_frame(*world)
        assert device[0] == pytest.approx(10.0, abs=1e-9)
        assert device[1] == pytest.approx(5.0, abs=1e-9)
