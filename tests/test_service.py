"""The selection service (DESIGN.md §11): admission, backpressure,
digest equality with the CLI path, durable resume, bounded retention.

The contracts under test:

* **Bit-identity** — a spec submitted over HTTP produces the same
  ``result_sha256`` as the same spec run through a local
  :class:`~repro.runtime.ScenarioRunner`; the front-end changes how
  runs are scheduled, never what they compute.
* **Isolation** — N concurrent submissions of the *same* spec digest
  get distinct run ids and distinct checkpoint journals, and their
  ObsSession metric snapshots fold into exactly N× the single-run
  counters (no interleaved or lost samples).
* **Backpressure** — a full queue answers 429 + Retry-After instead of
  buffering without bound.
* **Resume** — a run that died mid-flight keeps its fsync'd journal;
  ``POST /runs/<id>/retry`` re-executes only the blocks that never
  journaled (``checkpoint_hits`` in the manifest) and converges on the
  clean run's digest.
* **Bounded retention** — finished records and their journals are
  evicted past ``history_limit``.
"""

import asyncio
import threading
import time
from pathlib import Path

import pytest

from repro.runtime import (
    FaultPlan,
    FaultSpec,
    PolicySpec,
    ScenarioRunner,
    ScenarioSpec,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import SelectionService, ServiceConfig


def _small_spec(seed: int = 2017) -> ScenarioSpec:
    return ScenarioSpec(
        scenario="policy-eval",
        seed=seed,
        policies=(PolicySpec("css", {"n_probes": 14}),),
        params={"azimuth_step_deg": 30.0, "distance_m": 6.0, "n_sweeps": 2},
    )


class _Harness:
    """One in-process service on a background event loop + thread."""

    def __init__(self, config: ServiceConfig):
        self.loop = asyncio.new_event_loop()
        self.service = SelectionService(config)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._ready.set()
        self.loop.run_forever()

    def start(self) -> "_Harness":
        self._thread.start()
        assert self._ready.wait(15), "service failed to start"
        self.client = ServiceClient(port=self.service.port)
        return self

    def stop(self):
        future = asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop)
        future.result(20)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()


@pytest.fixture()
def make_service(tmp_path):
    harnesses = []

    def factory(**overrides) -> _Harness:
        overrides.setdefault("port", 0)
        overrides.setdefault("checkpoint_dir", str(tmp_path / "journals"))
        harness = _Harness(ServiceConfig(**overrides)).start()
        harnesses.append(harness)
        return harness

    yield factory
    for harness in harnesses:
        harness.stop()


def _direct_digest(spec: ScenarioSpec) -> str:
    with ScenarioRunner() as runner:
        outcome = runner.run(spec)
    assert outcome.manifest.result_sha256
    return outcome.manifest.result_sha256


class TestSubmission:
    def test_http_run_matches_direct_runner_digest(self, make_service):
        spec = _small_spec()
        harness = make_service(workers=2)
        accepted = harness.client.submit(spec.to_json())
        assert accepted["spec_digest"] == spec.digest()
        final = harness.client.wait(accepted["run"])
        assert final["status"] == "done"
        assert final["result_sha256"] == _direct_digest(spec)
        payload = harness.client.result(accepted["run"])
        assert payload["result"]["rows"]

    def test_probe_design_block_accepted_with_cli_digest(self, make_service):
        # The probe_design block rides the canonical spec JSON, so a
        # designed policy is service-submittable like any other — and
        # the HTTP digest matches the local runner bit-for-bit.
        spec = ScenarioSpec(
            scenario="policy-eval",
            seed=2017,
            policies=(
                PolicySpec(
                    "css",
                    {"n_probes": 14},
                    probe_design={"designer": "coherence-min"},
                ),
            ),
            params={"azimuth_step_deg": 30.0, "distance_m": 6.0, "n_sweeps": 2},
        )
        harness = make_service(workers=2)
        accepted = harness.client.submit(spec.to_json())
        assert accepted["spec_digest"] == spec.digest()
        final = harness.client.wait(accepted["run"])
        assert final["status"] == "done"
        assert final["result_sha256"] == _direct_digest(spec)

    def test_invalid_submissions_answer_400(self, make_service):
        harness = make_service()
        code, payload = harness.client.request("POST", "/runs", {"scenario": "nope"})
        assert code == 400
        assert "invalid scenario spec" in payload["error"]
        connection_code, _ = harness.client.request(
            "GET", "/runs/r999999-deadbeef"
        )
        assert connection_code == 404

    def test_metrics_and_healthz_expose_service_and_run_planes(self, make_service):
        harness = make_service(workers=1)
        accepted = harness.client.submit(_small_spec().to_json())
        harness.client.wait(accepted["run"])
        text = harness.client.metrics()
        assert 'service_runs_total{scenario="policy-eval",status="done"} 1' in text
        assert "service_queue_depth" in text
        # Data-plane metrics from the run's own ObsSession fold in too.
        assert "runner_block_seconds_count" in text
        health = harness.client.healthz()
        assert health["status"] == "ok"
        assert health["runs"]["done"] == 1
        assert health["durable"] is True


class TestConcurrency:
    def test_parallel_same_digest_runs_do_not_collide(self, make_service):
        n_runs = 8
        spec = _small_spec()
        harness = make_service(workers=4, queue_depth=32)
        accepted = [harness.client.submit(spec.to_json()) for _ in range(n_runs)]
        assert len({entry["run"] for entry in accepted}) == n_runs
        finals = [harness.client.wait(entry["run"]) for entry in accepted]
        assert all(final["status"] == "done" for final in finals)
        digests = {final["result_sha256"] for final in finals}
        assert digests == {_direct_digest(spec)}
        # Distinct journals per run id, even at identical spec digest.
        details = [harness.client.status(entry["run"]) for entry in accepted]
        journals = {detail["checkpoint"] for detail in details}
        assert len(journals) == n_runs

    def test_obs_sessions_do_not_interleave_across_workers(self, make_service):
        """The merged run-plane counters must be exactly N× one run's —
        a shared/global ObsSession would double-count or drop samples
        when four workers run concurrently."""
        n_runs = 8
        spec = _small_spec()
        harness = make_service(workers=4, queue_depth=32)
        accepted = [harness.client.submit(spec.to_json()) for _ in range(n_runs)]
        for entry in accepted:
            assert harness.client.wait(entry["run"])["status"] == "done"

        from repro import obs as _obs
        from repro.obs.metrics import MetricsRegistry

        session = _obs.ObsSession()
        with ScenarioRunner(obs=session) as runner:
            runner.run(spec)
        single = session.metrics.snapshot()
        merged = MetricsRegistry()
        merged.merge(harness.service.run_metrics.snapshot())
        snapshot = merged.snapshot()
        # The unit-cache hit/miss *split* legitimately depends on which
        # reused runner a run landed on (a warm runner hits where a cold
        # one misses) — only its total is structural.
        cache_family = "estimator_unit_cache_total"
        for key, value in single["counters"].items():
            if key.startswith(cache_family):
                continue
            assert snapshot["counters"].get(key) == pytest.approx(n_runs * value), key
        single_cache = sum(
            value for key, value in single["counters"].items()
            if key.startswith(cache_family)
        )
        merged_cache = sum(
            value for key, value in snapshot["counters"].items()
            if key.startswith(cache_family)
        )
        assert merged_cache == pytest.approx(n_runs * single_cache)
        for key, histogram in single["histograms"].items():
            assert snapshot["histograms"][key]["count"] == n_runs * histogram["count"]

    def test_full_queue_rejects_with_429(self, make_service):
        # One worker, queue of one: occupy the worker with a 2 s hang,
        # fill the queue slot, and the next submissions must bounce.
        hang_spec = _small_spec().with_faults(
            FaultPlan(faults=(FaultSpec(kind="hang", block=0, times=1),), hang_s=2.0)
        )
        harness = make_service(workers=1, queue_depth=1)
        first = harness.client.submit(hang_spec.to_json())
        # Wait until the worker has dequeued the first run.
        deadline = 50
        while harness.client.healthz()["runs"]["running"] == 0 and deadline:
            deadline -= 1
            time.sleep(0.05)
        assert harness.client.healthz()["runs"]["running"] == 1
        second = harness.client.submit(_small_spec().to_json())  # fills the queue
        with pytest.raises(ServiceError) as rejected:
            harness.client.submit(_small_spec().to_json())
        assert rejected.value.code == 429
        assert rejected.value.payload["queue_limit"] == 1
        text = harness.client.metrics()
        assert 'service_submissions_total{outcome="rejected"} 1' in text
        # Backpressure is transient: everything admitted still finishes.
        assert harness.client.wait(first["run"])["status"] == "done"
        assert harness.client.wait(second["run"])["status"] == "done"


class TestResume:
    def test_failed_run_retries_from_its_journal(self, make_service, tmp_path):
        # Block 1 raises on every attempt: block 0 journals, the run
        # fails, the journal survives.  The retry drops the fault
        # overlay, restores block 0 (checkpoint_hits) and converges on
        # the clean digest.
        spec = _small_spec()
        faulty = spec.with_faults(
            FaultPlan(faults=(FaultSpec(kind="exception", block=1, times=99),))
        )
        harness = make_service(workers=1, max_attempts=2, backoff_s=0.01)
        accepted = harness.client.submit(faulty.to_json())
        failed = harness.client.wait(accepted["run"])
        assert failed["status"] == "failed"
        assert "RetryExhausted" in failed["error"]
        assert harness.client.healthz()["status"] == "degraded"
        journal = Path(harness.client.status(accepted["run"])["checkpoint"])
        assert journal.is_file(), "a failed run must keep its journal"

        harness.client.retry(accepted["run"])
        final = harness.client.wait(accepted["run"])
        assert final["status"] == "done"
        detail = harness.client.status(accepted["run"])
        health = detail["manifest"]["health"]
        assert health["checkpoint_hits"] >= 1
        assert final["result_sha256"] == _direct_digest(spec)
        assert not journal.exists(), "a finished run's journal is discarded"

    def test_retry_of_inflight_or_unknown_run_is_rejected(self, make_service):
        harness = make_service(workers=1)
        code, _ = harness.client.request("POST", "/runs/r000042-nope/retry")
        assert code == 404
        accepted = harness.client.submit(_small_spec().to_json())
        code, payload = harness.client.request(
            "POST", f"/runs/{accepted['run']}/retry"
        )
        assert code == 409
        assert harness.client.wait(accepted["run"])["status"] == "done"

    def test_pool_worker_crash_mid_run_is_survived(self, make_service):
        # jobs=2 runs blocks on a fork pool; an injected crash kills one
        # worker process mid-run and supervision replaces it, so the
        # service still converges on the clean digest.
        spec = _small_spec()
        crashing = spec.with_faults(
            FaultPlan(faults=(FaultSpec(kind="crash", block=0, times=1),))
        )
        harness = make_service(workers=1, jobs=2, backoff_s=0.01)
        accepted = harness.client.submit(crashing.to_json())
        final = harness.client.wait(accepted["run"], timeout=240)
        assert final["status"] == "done"
        health = harness.client.status(accepted["run"])["manifest"]["health"]
        assert health["pool_replacements"] >= 1
        assert final["result_sha256"] == _direct_digest(spec)


class TestRetention:
    def test_history_eviction_bounds_records_and_journals(self, make_service, tmp_path):
        spec = _small_spec()
        harness = make_service(workers=2, history_limit=3)
        accepted = [harness.client.submit(spec.to_json()) for _ in range(6)]
        for entry in accepted:
            try:
                harness.client.wait(entry["run"])
            except ServiceError as error:  # evicted while we polled
                assert error.code == 404
        deadline = 100
        while deadline and harness.client.healthz()["runs"]["done"] > 3:
            deadline -= 1
            time.sleep(0.05)
        health = harness.client.healthz()
        assert sum(health["runs"].values()) <= 3
        # Every checkpoint journal was discarded (on completion or on
        # eviction); only the durable run registry remains.
        journal_dir = tmp_path / "journals"
        leftover = [
            path
            for path in journal_dir.glob("*.jsonl")
            if path.name != "registry.jsonl"
        ]
        assert leftover == []
        # The evicted earliest run no longer resolves.
        code, _ = harness.client.request("GET", f"/runs/{accepted[0]['run']}")
        assert code == 404


class TestLifecycle:
    """Deadline, cancellation, drain backpressure (DESIGN.md §14)."""

    def _sized_spec(self, seed: int, n_sweeps: int) -> ScenarioSpec:
        return ScenarioSpec(
            scenario="policy-eval",
            seed=seed,
            policies=(PolicySpec("css", {"n_probes": 14}),),
            params={
                "azimuth_step_deg": 30.0,
                "distance_m": 6.0,
                "n_sweeps": n_sweeps,
            },
        )

    def test_deadline_expired_run_settles_terminal(self, make_service):
        harness = make_service(workers=1)
        accepted = harness.client.submit(
            _small_spec().to_json(), deadline_s=0.001
        )
        final = harness.client.wait(accepted["run"])
        assert final["status"] == "deadline"
        assert "deadline" in final["error"]
        # No result to fetch; the terminal state is the 504-style answer.
        code, _ = harness.client.request(
            "GET", f"/runs/{accepted['run']}/result"
        )
        assert code == 404
        assert harness.client.healthz()["runs"]["deadline"] == 1
        # A generous deadline changes nothing about a healthy run.
        relaxed = harness.client.submit(
            _small_spec(seed=2018).to_json(), deadline_s=600.0
        )
        assert harness.client.wait(relaxed["run"])["status"] == "done"

    def test_invalid_deadline_is_rejected(self, make_service):
        harness = make_service(workers=1)
        for bad in (0, -1.5, "soon"):
            code, payload = harness.client.request(
                "POST", "/runs", {"spec": _small_spec().to_json(), "deadline_s": bad}
            )
            assert code == 400
            assert "deadline_s" in payload["error"]

    def test_cancel_queued_run_then_retry_converges(self, make_service):
        spec = self._sized_spec(seed=31, n_sweeps=2)
        blocker = self._sized_spec(seed=30, n_sweeps=8)
        harness = make_service(workers=1)
        harness.client.submit(blocker.to_json())
        queued = harness.client.submit(spec.to_json())
        payload = harness.client.cancel(queued["run"])
        assert payload["status"] == "cancelled"
        assert harness.client.status(queued["run"])["status"] == "cancelled"
        # The journal (if any) was kept, so a retry resumes cleanly and
        # converges on the uninterrupted digest.
        harness.client.retry(queued["run"])
        final = harness.client.wait(queued["run"], timeout=240)
        assert final["status"] == "done"
        assert final["result_sha256"] == _direct_digest(spec)

    def test_cancel_running_run_is_cooperative_and_retryable(self, make_service):
        spec = self._sized_spec(seed=32, n_sweeps=30)
        harness = make_service(workers=1)
        accepted = harness.client.submit(spec.to_json())
        deadline = time.monotonic() + 60
        while harness.client.status(accepted["run"])["status"] == "queued":
            assert time.monotonic() < deadline, "run never started"
            time.sleep(0.01)
        payload = harness.client.cancel(accepted["run"])
        assert payload["status"] in ("cancelling", "cancelled")
        final = harness.client.wait(accepted["run"], timeout=240)
        assert final["status"] == "cancelled"
        # Cancelling a terminal run is a conflict, not a crash.
        code, _ = harness.client.request("DELETE", f"/runs/{accepted['run']}")
        assert code == 409
        harness.client.retry(accepted["run"])
        assert (
            harness.client.wait(accepted["run"], timeout=240)["status"] == "done"
        )

    def test_draining_service_rejects_with_503_and_retry_after(self, make_service):
        harness = make_service(workers=1)
        harness.service._draining = True
        try:
            code, payload, retry_after = harness.client._round_trip(
                "POST", "/runs", _small_spec().to_json()
            )
            assert code == 503
            assert "draining" in payload["error"]
            assert retry_after is not None and retry_after >= 1.0
            assert payload["retry_after_s"] >= 1.0
        finally:
            harness.service._draining = False
        accepted = harness.client.submit(_small_spec().to_json())
        assert harness.client.wait(accepted["run"])["status"] == "done"
        assert "service_retry_after_s" in harness.client.metrics()

    def test_retry_after_tracks_queue_drain_rate(self, make_service):
        harness = make_service(workers=2)
        service = harness.service
        # Empty history, empty queue: the floor answer.
        assert service._retry_after_s() == 1.0
        # p50 × waiting ÷ workers, from observed run durations.
        service._durations.extend([2.0, 4.0, 6.0])
        service._inflight = 3
        try:
            assert service._retry_after_s() == pytest.approx(4.0 * 3 / 2)
            # Clamped to at most a minute.
            service._durations.extend([500.0] * 10)
            assert service._retry_after_s() == 60.0
        finally:
            service._inflight = 0
            service._durations.clear()


class TestLoadHarness:
    def test_small_load_self_hosts_reports_and_benches(self, capsys, tmp_path):
        import json

        from repro.service.load import LoadConfig, run_load

        bench = tmp_path / "bench.json"
        status = run_load(
            LoadConfig(
                levels=(2, 4),
                workers=2,
                queue_depth=16,
                history_limit=8,
                gate_p99_ms=5000.0,
            ),
            output=str(bench),
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "service load: scenario=fig10" in out
        assert "within 5000.00 ms budget" in out
        point = json.loads(bench.read_text())["points"][-1]
        assert point["label"] == "service-load"
        metrics = point["metrics"]
        assert metrics["service_load_max_sustained_concurrency"] >= 2
        assert metrics["service_load_total_requests"] == 6
        assert metrics["service_load_rejected_total"] == 0

    def test_cli_parses_serve_and_load_surfaces(self):
        from repro.cli import build_parser, main

        parser = build_parser()
        args = parser.parse_args(
            ["load", "--levels", "2,4", "--gate-p99-ms", "100", "--scenario", "fig10"]
        )
        assert args.levels == "2,4" and args.gate_p99_ms == 100.0
        args = parser.parse_args(
            ["serve", "--port", "0", "--workers", "1", "--no-durable"]
        )
        assert args.port == 0 and args.no_durable
        assert main(["load", "--levels", "nope"]) == 2
        assert main(["load", "--levels", "0,-3"]) == 2
