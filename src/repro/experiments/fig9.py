"""Figure 9: SNR loss vs. number of probing sectors.

For every sweep the loss is the gap between the true SNR of an oracle's
sector (the best achievable) and the true SNR of the sector the
algorithm selected.  The exhaustive sweep sits ~0.5 dB under the
optimum (noise occasionally crowns the wrong sector); compressive
selection starts worse with few probes and crosses below the sweep
around 14, approaching the optimum near 20.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Sequence

import numpy as np

from ..channel.environment import conference_room
from ..runtime.registry import register_scenario
from ..runtime.runner import ScenarioRunner, TrialRecord
from ..runtime.spec import PolicySpec, ScenarioSpec
from .common import record_directions

__all__ = ["Fig9Config", "Fig9Result", "run_fig9", "fig9_spec"]


@dataclass(frozen=True)
class Fig9Config:
    seed: int = 9
    probe_counts: Sequence[int] = tuple(range(4, 35, 2))
    azimuth_step_deg: float = 5.0
    n_sweeps: int = 20


@dataclass
class Fig9Result:
    probe_counts: List[int]
    css_loss_db: List[float]
    ssw_loss_db: float

    def css_at(self, n_probes: int) -> float:
        return self.css_loss_db[self.probe_counts.index(n_probes)]

    def crossover_probes(self) -> int:
        """Smallest probe count where CSS loses no more than SSW."""
        for n_probes, loss in zip(self.probe_counts, self.css_loss_db):
            if loss <= self.ssw_loss_db:
                return n_probes
        return self.probe_counts[-1]

    def format_rows(self) -> List[str]:
        rows = [
            "fig9: average SNR loss vs optimal sector (conference room)",
            f"SSW (full sweep): {self.ssw_loss_db:.2f} dB",
            "probes | CSS loss [dB]",
        ]
        for n_probes, loss in zip(self.probe_counts, self.css_loss_db):
            marker = " <- reaches SSW" if n_probes == self.crossover_probes() else ""
            rows.append(f"{n_probes:6d} | {loss:5.2f}{marker}")
        return rows


def fig9_spec(config: Fig9Config = Fig9Config()) -> ScenarioSpec:
    """The declarative form of a Figure 9 run."""
    params = {key: value for key, value in asdict(config).items() if key != "seed"}
    return ScenarioSpec(scenario="fig9", seed=config.seed, params=params)


def _config_from_spec(spec: ScenarioSpec) -> Fig9Config:
    return Fig9Config(seed=spec.seed, **spec.params)


def _losses(records: Sequence[TrialRecord], recordings, column_of) -> List[float]:
    return [
        recordings[record.recording_index].optimal_snr_db()
        - float(
            recordings[record.recording_index].true_snr_db[
                column_of[record.result.sector_id]
            ]
        )
        for record in records
    ]


@register_scenario("fig9", default_spec=fig9_spec)
def _run_fig9_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> Fig9Result:
    """Figure 9: SNR loss vs. probe count in the conference room."""
    config = _config_from_spec(spec)
    testbed = spec.testbed.build()
    context = runner.context(testbed)
    rng = np.random.default_rng(config.seed)
    azimuths = np.arange(-60.0, 60.0 + 1e-9, config.azimuth_step_deg)
    recordings = record_directions(
        testbed, conference_room(6.0), azimuths, [0.0], config.n_sweeps, rng
    )
    tx_ids = testbed.tx_sector_ids
    column_of = {sector_id: column for column, sector_id in enumerate(tx_ids)}

    # SSW first (no randomness consumed), fresh state per recording.
    ssw_spec = PolicySpec("full-sweep", {})
    ssw = runner.build_policy(ssw_spec, context)
    ssw_records = runner.execute(
        ssw,
        runner.plan_trials(ssw, recordings, tx_ids, rng),
        reset="recording",
        policy_spec=ssw_spec,
        testbed_spec=spec.testbed,
    )
    ssw_loss_db = float(np.mean(_losses(ssw_records, recordings, column_of)))

    css_loss_db: List[float] = []
    for n_probes in config.probe_counts:
        policy_spec = PolicySpec("css", {"n_probes": int(n_probes)})
        policy = runner.build_policy(policy_spec, context)
        records = runner.execute(
            policy,
            runner.plan_trials(policy, recordings, tx_ids, rng),
            reset="recording",
            policy_spec=policy_spec,
            testbed_spec=spec.testbed,
        )
        css_loss_db.append(float(np.mean(_losses(records, recordings, column_of))))

    return Fig9Result(
        probe_counts=list(config.probe_counts),
        css_loss_db=css_loss_db,
        ssw_loss_db=ssw_loss_db,
    )


def run_fig9(config: Fig9Config = Fig9Config(), jobs: int = 1) -> Fig9Result:
    """Run the SNR-loss experiment in the conference room."""
    with ScenarioRunner(jobs=jobs) as runner:
        return runner.run(fig9_spec(config)).result
