"""Sector codebooks.

IEEE 802.11ad devices do not steer arbitrary beams at runtime: the
firmware ships a fixed set of precomputed weight vectors, the
*sectors*, indexed by a sector ID carried in sector-sweep frames.
:class:`Codebook` is that indexed set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .array import PhasedArray
from .weights import WeightVector

__all__ = ["Sector", "Codebook", "RX_SECTOR_ID"]

#: Sector ID used for the quasi-omnidirectional receive sector.  The
#: Talon's transmit sweep uses IDs 1–31 and 61–63 (Table 1), leaving 0
#: free for the unnumbered receive pattern.
RX_SECTOR_ID = 0


@dataclass(frozen=True)
class Sector:
    """One codebook entry.

    Attributes:
        sector_id: the ID carried in SSW frames (6-bit field).
        weights: the weight vector the front-end applies.
        kind: free-form descriptor ("directive", "multi-lobe", ...).
    """

    sector_id: int
    weights: WeightVector
    kind: str = "directive"

    def __post_init__(self) -> None:
        if not 0 <= self.sector_id <= 63:
            raise ValueError("sector IDs are a 6-bit field (0..63)")


class Codebook:
    """An ordered, ID-indexed set of sectors for one antenna."""

    def __init__(self, sectors: List[Sector], rx_sector_id: int = RX_SECTOR_ID):
        if not sectors:
            raise ValueError("a codebook needs at least one sector")
        self._sectors: Dict[int, Sector] = {}
        for sector in sectors:
            if sector.sector_id in self._sectors:
                raise ValueError(f"duplicate sector ID {sector.sector_id}")
            self._sectors[sector.sector_id] = sector
        if rx_sector_id not in self._sectors:
            raise ValueError(f"receive sector {rx_sector_id} missing from codebook")
        self._rx_sector_id = rx_sector_id

    def __len__(self) -> int:
        return len(self._sectors)

    def __iter__(self) -> Iterator[Sector]:
        return iter(self._sectors.values())

    def __contains__(self, sector_id: int) -> bool:
        return sector_id in self._sectors

    def __getitem__(self, sector_id: int) -> Sector:
        try:
            return self._sectors[sector_id]
        except KeyError:
            raise KeyError(f"unknown sector ID {sector_id}") from None

    @property
    def sector_ids(self) -> List[int]:
        """All sector IDs, in insertion order."""
        return list(self._sectors)

    @property
    def rx_sector_id(self) -> int:
        """ID of the quasi-omni receive sector."""
        return self._rx_sector_id

    @property
    def rx_sector(self) -> Sector:
        return self._sectors[self._rx_sector_id]

    @property
    def tx_sector_ids(self) -> List[int]:
        """IDs usable for transmit sweeps (everything but the RX sector)."""
        return [sector_id for sector_id in self._sectors if sector_id != self._rx_sector_id]

    @property
    def n_tx_sectors(self) -> int:
        return len(self.tx_sector_ids)

    def gains_db(
        self,
        antenna: PhasedArray,
        azimuth_deg: np.ndarray,
        elevation_deg: np.ndarray,
        sector_ids: Optional[List[int]] = None,
    ) -> Dict[int, np.ndarray]:
        """Ground-truth gain of each sector in the given directions."""
        if sector_ids is None:
            sector_ids = self.sector_ids
        return {
            sector_id: antenna.gain_db(self[sector_id].weights, azimuth_deg, elevation_deg)
            for sector_id in sector_ids
        }
