"""A Talon-AD7200-like station: host system + Wi-Fi chip + antenna.

A :class:`Station` bundles the pieces one physical router contributes
to an experiment: its phased array, the (black-box) QCA9500 chip and
the host side.  The stock host can only run sweeps; calling
:meth:`Station.jailbreak` installs the LEDE + Nexmon tooling of §3 and
unlocks the two research interfaces — sweep-report extraction and the
sector override.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..channel.observation import MeasurementModel
from ..firmware.chip import QCA9500, SweepReport
from ..firmware.patches import (
    PatchFramework,
    sector_override_patch,
    signal_strength_extraction_patch,
)
from ..firmware.wmi import (
    WmiClearSectorOverride,
    WmiDrainSweepReports,
    WmiSetSectorOverride,
)
from ..geometry.rotation import Orientation
from ..phased_array.array import PhasedArray
from ..phased_array.codebook import Codebook
from ..phased_array.talon import talon_codebook
from .frames import station_mac

__all__ = ["Station"]


class Station:
    """One 802.11ad node (AP, client, or monitor)."""

    def __init__(
        self,
        name: str,
        index: int,
        antenna: PhasedArray,
        codebook: Optional[Codebook] = None,
        measurement_model: Optional[MeasurementModel] = None,
        position_m: Optional[np.ndarray] = None,
        orientation: Optional[Orientation] = None,
    ):
        self.name = name
        self.mac = station_mac(index)
        self.antenna = antenna
        self.codebook = codebook if codebook is not None else talon_codebook(antenna)
        self.chip = QCA9500(self.codebook, measurement_model)
        self.position_m = (
            np.zeros(3) if position_m is None else np.asarray(position_m, dtype=float)
        )
        self.orientation = orientation if orientation is not None else Orientation()
        #: Sector currently used for data transmission (set by training).
        self.tx_sector_id: int = self.codebook.tx_sector_ids[0]
        self._patch_framework: Optional[PatchFramework] = None

    def __repr__(self) -> str:
        return f"Station({self.name!r})"

    # ------------------------------------------------------------------
    # Host-side research tooling (requires jailbreak).
    # ------------------------------------------------------------------

    @property
    def is_jailbroken(self) -> bool:
        return self._patch_framework is not None

    def jailbreak(self) -> PatchFramework:
        """Install the LEDE/Nexmon firmware patches of §3.

        Idempotent: repeated calls return the existing framework.
        """
        if self._patch_framework is None:
            framework = PatchFramework(self.chip)
            framework.install(signal_strength_extraction_patch())
            framework.install(sector_override_patch())
            self._patch_framework = framework
        return self._patch_framework

    def _require_jailbreak(self) -> None:
        if not self.is_jailbroken:
            raise RuntimeError(
                f"station {self.name!r} runs stock firmware; call jailbreak() first"
            )

    def drain_sweep_reports(self) -> List[SweepReport]:
        """Read the sweep-report ring buffer from user space (§3.3)."""
        self._require_jailbreak()
        return self.chip.handle_wmi(WmiDrainSweepReports())

    def arm_sector_override(self, sector_id: int) -> None:
        """Force ``sector_id`` into future SSW feedback fields (§3.4)."""
        self._require_jailbreak()
        self.chip.handle_wmi(WmiSetSectorOverride(sector_id))

    def clear_sector_override(self) -> None:
        """Return feedback selection to the stock algorithm."""
        self._require_jailbreak()
        self.chip.handle_wmi(WmiClearSectorOverride())

    # ------------------------------------------------------------------
    # Antenna convenience.
    # ------------------------------------------------------------------

    @property
    def rx_weights(self):
        """Quasi-omni receive sector (no receive training is done)."""
        return self.codebook.rx_sector.weights

    def tx_weights(self, sector_id: int):
        """Weights of a given transmit sector."""
        return self.codebook[sector_id].weights
