"""Bench: regenerate Figure 9 (SNR loss vs. number of probes).

Paper shape: the exhaustive sweep loses ~0.5 dB to the optimum; CSS
starts several dB worse with few probes (6 probes ≈ 2.5 dB in the
paper), improves monotonically, reaches sweep parity in the mid-teens
of probes, and approaches the optimum around 20+.
"""

from repro.experiments import Fig9Config, run_fig9


def test_fig9_snr_loss(benchmark, report_rows):
    config = Fig9Config(
        probe_counts=tuple(range(4, 35, 2)), azimuth_step_deg=5.0, n_sweeps=20
    )
    result = benchmark.pedantic(lambda: run_fig9(config), rounds=1, iterations=1)
    report_rows(result.format_rows())

    # SSW near-optimal (the paper's ~0.5 dB).
    assert 0.1 < result.ssw_loss_db < 1.5

    # CSS loss decreases with probes: few probes are several dB down.
    assert result.css_at(6) > result.css_at(14) > result.css_at(24)
    assert result.css_at(6) > 2.0

    # Parity with the sweep is reached before full probing, and at
    # full probing CSS is at least as good as the sweep.
    assert result.crossover_probes() < 34
    assert result.css_at(34) <= result.ssw_loss_db + 0.2
