"""DMG management frames used during beamforming training.

Four frame types participate in sector-level sweeps (IEEE 802.11ad
§9.35): DMG beacons, SSW frames, SSW-feedback frames and SSW-ACK
frames.  Each is a dataclass with an exact binary codec so monitor-mode
captures can be parsed the way the paper parses tcpdump output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .fields import SSWField

__all__ = [
    "station_mac",
    "format_mac",
    "SSWFeedbackField",
    "BeaconFrame",
    "SSWFrame",
    "SSWFeedbackFrame",
    "SSWAckFrame",
    "Frame",
    "decode_frame",
    "FRAME_TYPE_BEACON",
    "FRAME_TYPE_SSW",
    "FRAME_TYPE_SSW_FEEDBACK",
    "FRAME_TYPE_SSW_ACK",
]

FRAME_TYPE_BEACON = 0x01
FRAME_TYPE_SSW = 0x02
FRAME_TYPE_SSW_FEEDBACK = 0x03
FRAME_TYPE_SSW_ACK = 0x04

_HEADER_LEN = 13  # type (1) + src (6) + dst (6)
_BROADCAST = b"\xff" * 6


def station_mac(index: int) -> bytes:
    """A deterministic locally administered MAC for station ``index``."""
    if not 0 <= index <= 0xFFFF:
        raise ValueError("station index out of range")
    return bytes([0x02, 0xAD, 0x72, 0x00]) + index.to_bytes(2, "big")


def format_mac(mac: bytes) -> str:
    """Human-readable colon-separated MAC string."""
    if len(mac) != 6:
        raise ValueError("MAC addresses are 6 bytes")
    return ":".join(f"{byte:02x}" for byte in mac)


def _check_mac(mac: bytes) -> bytes:
    if not isinstance(mac, (bytes, bytearray)) or len(mac) != 6:
        raise ValueError("MAC addresses are 6 bytes")
    return bytes(mac)


@dataclass(frozen=True)
class SSWFeedbackField:
    """The SSW-feedback field: the chosen sector and its quality.

    Attributes:
        sector_select: sector the peer should transmit with (6 bits).
        antenna_select: DMG antenna the selection refers to (2 bits).
        snr_report_db: SNR the selected sector achieved; encoded in
            quarter-dB units with a −8 dB offset into one byte.
    """

    sector_select: int
    antenna_select: int = 0
    snr_report_db: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.sector_select <= 63:
            raise ValueError("sector select is a 6-bit field")
        if not 0 <= self.antenna_select <= 3:
            raise ValueError("antenna select is a 2-bit field")

    def pack(self) -> bytes:
        snr_code = int(round((self.snr_report_db + 8.0) * 4.0))
        snr_code = max(0, min(255, snr_code))
        value = self.sector_select | (self.antenna_select << 6) | (snr_code << 8)
        return value.to_bytes(3, "little")

    @classmethod
    def unpack(cls, data: bytes) -> "SSWFeedbackField":
        if len(data) != 3:
            raise ValueError(f"SSW feedback field is 3 bytes, got {len(data)}")
        value = int.from_bytes(data, "little")
        snr_code = (value >> 8) & 0xFF
        return cls(
            sector_select=value & 0x3F,
            antenna_select=(value >> 6) & 0x3,
            snr_report_db=snr_code / 4.0 - 8.0,
        )


@dataclass(frozen=True)
class BeaconFrame:
    """DMG beacon, swept over sectors to advertise the AP."""

    src: bytes
    sector_id: int
    cdown: int
    tsf_us: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", _check_mac(self.src))
        if not 0 <= self.sector_id <= 63:
            raise ValueError("sector ID is a 6-bit field")
        if self.cdown < 0 or self.tsf_us < 0:
            raise ValueError("cdown and tsf must be non-negative")

    @property
    def dst(self) -> bytes:
        return _BROADCAST

    def encode(self) -> bytes:
        body = SSWField(direction=0, cdown=self.cdown, sector_id=self.sector_id).pack()
        return (
            bytes([FRAME_TYPE_BEACON])
            + self.src
            + self.dst
            + body
            + self.tsf_us.to_bytes(8, "little")
        )

    @classmethod
    def decode(cls, data: bytes) -> "BeaconFrame":
        if len(data) != _HEADER_LEN + 3 + 8 or data[0] != FRAME_TYPE_BEACON:
            raise ValueError("not a beacon frame")
        field = SSWField.unpack(data[_HEADER_LEN : _HEADER_LEN + 3])
        tsf = int.from_bytes(data[_HEADER_LEN + 3 :], "little")
        return cls(src=data[1:7], sector_id=field.sector_id, cdown=field.cdown, tsf_us=tsf)


@dataclass(frozen=True)
class SSWFrame:
    """Sector sweep frame: one probe transmitted on one sector."""

    src: bytes
    dst: bytes
    ssw: SSWField
    feedback: SSWFeedbackField = SSWFeedbackField(sector_select=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", _check_mac(self.src))
        object.__setattr__(self, "dst", _check_mac(self.dst))

    @property
    def sector_id(self) -> int:
        return self.ssw.sector_id

    @property
    def cdown(self) -> int:
        return self.ssw.cdown

    def encode(self) -> bytes:
        return (
            bytes([FRAME_TYPE_SSW]) + self.src + self.dst + self.ssw.pack() + self.feedback.pack()
        )

    @classmethod
    def decode(cls, data: bytes) -> "SSWFrame":
        if len(data) != _HEADER_LEN + 6 or data[0] != FRAME_TYPE_SSW:
            raise ValueError("not an SSW frame")
        return cls(
            src=data[1:7],
            dst=data[7:13],
            ssw=SSWField.unpack(data[13:16]),
            feedback=SSWFeedbackField.unpack(data[16:19]),
        )


@dataclass(frozen=True)
class SSWFeedbackFrame:
    """Initiator→responder frame carrying the responder's best sector."""

    src: bytes
    dst: bytes
    feedback: SSWFeedbackField

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", _check_mac(self.src))
        object.__setattr__(self, "dst", _check_mac(self.dst))

    def encode(self) -> bytes:
        return bytes([FRAME_TYPE_SSW_FEEDBACK]) + self.src + self.dst + self.feedback.pack()

    @classmethod
    def decode(cls, data: bytes) -> "SSWFeedbackFrame":
        if len(data) != _HEADER_LEN + 3 or data[0] != FRAME_TYPE_SSW_FEEDBACK:
            raise ValueError("not an SSW feedback frame")
        return cls(src=data[1:7], dst=data[7:13], feedback=SSWFeedbackField.unpack(data[13:16]))


@dataclass(frozen=True)
class SSWAckFrame:
    """Responder→initiator acknowledgment closing the sweep."""

    src: bytes
    dst: bytes
    feedback: SSWFeedbackField

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", _check_mac(self.src))
        object.__setattr__(self, "dst", _check_mac(self.dst))

    def encode(self) -> bytes:
        return bytes([FRAME_TYPE_SSW_ACK]) + self.src + self.dst + self.feedback.pack()

    @classmethod
    def decode(cls, data: bytes) -> "SSWAckFrame":
        if len(data) != _HEADER_LEN + 3 or data[0] != FRAME_TYPE_SSW_ACK:
            raise ValueError("not an SSW ack frame")
        return cls(src=data[1:7], dst=data[7:13], feedback=SSWFeedbackField.unpack(data[13:16]))


Frame = Union[BeaconFrame, SSWFrame, SSWFeedbackFrame, SSWAckFrame]

_DECODERS = {
    FRAME_TYPE_BEACON: BeaconFrame.decode,
    FRAME_TYPE_SSW: SSWFrame.decode,
    FRAME_TYPE_SSW_FEEDBACK: SSWFeedbackFrame.decode,
    FRAME_TYPE_SSW_ACK: SSWAckFrame.decode,
}


def decode_frame(data: bytes) -> Frame:
    """Decode any training frame from its wire bytes."""
    if not data:
        raise ValueError("empty frame")
    decoder = _DECODERS.get(data[0])
    if decoder is None:
        raise ValueError(f"unknown frame type 0x{data[0]:02x}")
    return decoder(data)
