#!/usr/bin/env python3
"""Conference-room showdown: CSS vs. the exhaustive sweep (paper §6).

Places two routers six meters apart in a reflective conference room and
re-trains once per simulated second for a minute, comparing compressive
selection (14 random probes) with the standard sector sweep on the
paper's three metrics: selection stability, SNR loss, and TCP goodput.

Run:  python examples/conference_room.py
"""

import numpy as np

from repro.channel import conference_room
from repro.core import CompressiveSectorSelector, SectorSweepSelector
from repro.experiments import (
    build_testbed,
    random_subsweep,
    record_directions,
    stability_of_selections,
)
from repro.link import ThroughputModel
from repro.mac.timing import N_FULL_SWEEP_SECTORS, mutual_training_time_us

N_PROBES = 14
N_INTERVALS = 60
DIRECTION_DEG = -10.0


def main() -> None:
    rng = np.random.default_rng(42)
    print("building testbed (devices + chamber pattern campaign) ...")
    testbed = build_testbed()
    tx_ids = testbed.tx_sector_ids

    print(f"recording {N_INTERVALS} training intervals at {DIRECTION_DEG:+.0f} deg, 6 m ...")
    recording = record_directions(
        testbed, conference_room(6.0), [DIRECTION_DEG], [0.0], N_INTERVALS, rng
    )[0]
    optimal = recording.optimal_snr_db()
    print(f"oracle sector SNR: {optimal:.1f} dB")

    css = CompressiveSectorSelector(testbed.pattern_table)
    ssw = SectorSweepSelector()
    css_selections, ssw_selections = [], []
    css_snr, ssw_snr = [], []
    for sweep in recording.sweeps:
        css_choice = css.select(random_subsweep(sweep, tx_ids, N_PROBES, rng)).sector_id
        ssw_choice = ssw.select(list(sweep.values())).sector_id
        css_selections.append(css_choice)
        ssw_selections.append(ssw_choice)
        css_snr.append(recording.true_snr_db[tx_ids.index(css_choice)])
        ssw_snr.append(recording.true_snr_db[tx_ids.index(ssw_choice)])

    model = ThroughputModel()
    rows = [
        ("metric", f"CSS ({N_PROBES} probes)", "SSW (34 probes)"),
        (
            "selection stability",
            f"{stability_of_selections(css_selections):.2f}",
            f"{stability_of_selections(ssw_selections):.2f}",
        ),
        (
            "mean SNR loss [dB]",
            f"{optimal - np.mean(css_snr):.2f}",
            f"{optimal - np.mean(ssw_snr):.2f}",
        ),
        (
            "TCP goodput [Gbps]",
            f"{model.expected_goodput_gbps(css_snr, N_PROBES, css_selections):.2f}",
            f"{model.expected_goodput_gbps(ssw_snr, N_FULL_SWEEP_SECTORS, ssw_selections):.2f}",
        ),
        (
            "training time [ms]",
            f"{mutual_training_time_us(N_PROBES) / 1000:.2f}",
            f"{mutual_training_time_us(N_FULL_SWEEP_SECTORS) / 1000:.2f}",
        ),
    ]
    print()
    for left, middle, right in rows:
        print(f"{left:22s} {middle:>18s} {right:>18s}")


if __name__ == "__main__":
    main()
