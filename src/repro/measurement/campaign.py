"""Anechoic-chamber pattern measurement campaign (§4.2–§4.5).

Reproduces the paper's campaign: the device under test (DUT) sits on
the rotation head three meters from a fixed reference device.  For the
transmit patterns the DUT sweeps all TX sectors while the reference
listens quasi-omni; for the receive pattern the roles switch and the
reference transmits on its strongly directive sector 63.  Raw samples
go through outlier rejection, averaging and gap interpolation before
becoming a :class:`~repro.measurement.patterns.PatternTable`.

Grid semantics: samples are filed under the *commanded* head position
(device-frame azimuth/elevation the head was supposed to reach), while
the simulated physics uses the *actual* — error-afflicted — pose.  The
manual tilt error therefore leaks into the elevation patterns exactly
as it did in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..channel.batch import sweep_snr_matrix
from ..channel.environment import Environment, anechoic_chamber
from ..channel.link import LinkBudget
from ..channel.observation import MeasurementModel
from ..geometry.grid import AngularGrid
from ..phased_array.array import PhasedArray
from ..phased_array.codebook import Codebook
from .patterns import PatternTable
from .processing import interpolate_gaps, robust_average
from .rotation_head import RotationHead

__all__ = [
    "CampaignConfig",
    "PatternMeasurementCampaign",
    "measure_azimuth_patterns",
    "measure_3d_patterns",
]

#: Reference sector the fixed device transmits with while the DUT's
#: receive pattern is measured (§4.3: "only frames transmitted on
#: sector 63, as it has a strong unidirectional gain").
_REFERENCE_TX_SECTOR = 63


@dataclass(frozen=True)
class CampaignConfig:
    """Sweep-and-rotate schedule of one campaign.

    Attributes:
        azimuths_deg: device-frame azimuth grid (strictly increasing).
        elevations_deg: head tilt grid (strictly increasing).
        n_sweeps: repeated sweeps per position (averaged afterwards).
    """

    azimuths_deg: Sequence[float]
    elevations_deg: Sequence[float] = (0.0,)
    n_sweeps: int = 3

    def __post_init__(self) -> None:
        if self.n_sweeps < 1:
            raise ValueError("need at least one sweep per position")
        if len(self.azimuths_deg) == 0 or len(self.elevations_deg) == 0:
            raise ValueError("campaign grids must be non-empty")

    @property
    def grid(self) -> AngularGrid:
        return AngularGrid(
            np.asarray(self.azimuths_deg, dtype=float),
            np.asarray(self.elevations_deg, dtype=float),
        )


class PatternMeasurementCampaign:
    """Measures every codebook pattern of a DUT in a chamber."""

    def __init__(
        self,
        dut_antenna: PhasedArray,
        dut_codebook: Codebook,
        reference_antenna: Optional[PhasedArray] = None,
        reference_codebook: Optional[Codebook] = None,
        environment: Optional[Environment] = None,
        budget: Optional[LinkBudget] = None,
        measurement_model: Optional[MeasurementModel] = None,
        rotation_head: Optional[RotationHead] = None,
        chamber_attenuation_db: float = 13.0,
    ):
        """
        Args:
            chamber_attenuation_db: calibrated attenuation inserted in
                the chamber link so the strongest sectors stay inside
                the firmware's −7 … 12 dB reporting window — clipped
                peaks would destroy the gain *ranking* that the Eq. 4
                selection step depends on.  The constant offset is
                irrelevant to the (scale-invariant) Eq. 2 correlation.
        """
        from dataclasses import replace

        from ..phased_array.talon import talon_codebook  # local: avoids cycle at import

        if chamber_attenuation_db < 0:
            raise ValueError("attenuation cannot be negative")
        self.dut_antenna = dut_antenna
        self.dut_codebook = dut_codebook
        self.reference_antenna = (
            reference_antenna if reference_antenna is not None else PhasedArray.talon()
        )
        self.reference_codebook = (
            reference_codebook
            if reference_codebook is not None
            else talon_codebook(self.reference_antenna)
        )
        self.environment = environment if environment is not None else anechoic_chamber()
        base_budget = budget if budget is not None else LinkBudget()
        self.budget = replace(
            base_budget, tx_power_dbm=base_budget.tx_power_dbm - chamber_attenuation_db
        )
        self.measurement_model = (
            measurement_model if measurement_model is not None else MeasurementModel()
        )
        # When no head is supplied, each run builds one seeded from the
        # run's RNG so that identical seeds reproduce identical tables.
        self.rotation_head = rotation_head

    def _observe_matrix(
        self,
        true_snr: np.ndarray,
        n_sweeps: int,
        rng: np.random.Generator,
    ) -> List[List[List[float]]]:
        """Collect per-(position, sector) sample lists from true SNRs."""
        noise_floor = self.budget.noise_floor_dbm
        n_positions, n_sectors = true_snr.shape
        samples: List[List[List[float]]] = [
            [[] for _ in range(n_sectors)] for _ in range(n_positions)
        ]
        for _ in range(n_sweeps):
            for position in range(n_positions):
                for sector in range(n_sectors):
                    observation = self.measurement_model.observe(
                        true_snr[position, sector], noise_floor, rng
                    )
                    if observation is not None:
                        samples[position][sector].append(observation.snr_db)
        return samples

    def run(self, config: CampaignConfig, rng: np.random.Generator) -> PatternTable:
        """Execute the campaign and return the processed table.

        The returned table contains every codebook sector, including
        the quasi-omni RX pattern under its own sector ID.
        """
        grid = config.grid
        head = (
            self.rotation_head
            if self.rotation_head is not None
            else RotationHead(np.random.default_rng(rng.integers(2**31)))
        )
        tx_ids = self.dut_codebook.tx_sector_ids
        rx_id = self.dut_codebook.rx_sector_id
        n_az = grid.n_azimuth

        raw: Dict[int, np.ndarray] = {
            sector_id: np.full(grid.shape, np.nan) for sector_id in [rx_id] + tx_ids
        }

        for el_index, elevation in enumerate(grid.elevations_deg):
            head.set_tilt(float(elevation))
            orientations = []
            for azimuth in grid.azimuths_deg:
                # Device-frame azimuth `a` needs a head yaw of −a.
                head.set_azimuth(-float(azimuth))
                orientations.append(head.orientation())

            # TX patterns: DUT transmits, reference listens quasi-omni.
            true_tx = sweep_snr_matrix(
                self.environment,
                self.dut_antenna,
                self.dut_codebook,
                tx_ids,
                orientations,
                self.reference_antenna,
                self.reference_codebook.rx_sector.weights,
                budget=self.budget,
            )
            tx_samples = self._observe_matrix(true_tx, config.n_sweeps, rng)
            for az_index in range(n_az):
                for column, sector_id in enumerate(tx_ids):
                    raw[sector_id][el_index, az_index] = robust_average(
                        tx_samples[az_index][column]
                    )

            # RX pattern: reference transmits sector 63; by reciprocity
            # this equals the DUT "transmitting" its RX weights toward a
            # reference that "receives" with its sector-63 weights.
            true_rx = sweep_snr_matrix(
                self.environment,
                self.dut_antenna,
                self.dut_codebook,
                [rx_id],
                orientations,
                self.reference_antenna,
                self.reference_codebook[_REFERENCE_TX_SECTOR].weights,
                budget=self.budget,
            )
            rx_samples = self._observe_matrix(true_rx, config.n_sweeps, rng)
            for az_index in range(n_az):
                raw[rx_id][el_index, az_index] = robust_average(rx_samples[az_index][0])

        processed = {
            sector_id: interpolate_gaps(values) for sector_id, values in raw.items()
        }
        return PatternTable(grid, processed)


def measure_azimuth_patterns(
    campaign: PatternMeasurementCampaign,
    rng: np.random.Generator,
    azimuth_step_deg: float = 0.9,
    n_sweeps: int = 3,
) -> PatternTable:
    """The Figure 5 campaign: full azimuth circle at elevation 0.

    The paper rotates from −180° to 180° in 0.9° steps.
    """
    n_steps = int(round(360.0 / azimuth_step_deg))
    azimuths = -180.0 + azimuth_step_deg * np.arange(n_steps + 1)
    config = CampaignConfig(azimuths_deg=azimuths, elevations_deg=(0.0,), n_sweeps=n_sweeps)
    return campaign.run(config, rng)


def measure_3d_patterns(
    campaign: PatternMeasurementCampaign,
    rng: np.random.Generator,
    azimuth_step_deg: float = 1.8,
    elevation_step_deg: float = 3.6,
    max_elevation_deg: float = 32.4,
    n_sweeps: int = 3,
) -> PatternTable:
    """The Figure 6 campaign: ±90° azimuth, 0°–32.4° manual tilts."""
    n_az = int(round(180.0 / azimuth_step_deg))
    azimuths = -90.0 + azimuth_step_deg * np.arange(n_az + 1)
    n_el = int(round(max_elevation_deg / elevation_step_deg))
    elevations = elevation_step_deg * np.arange(n_el + 1)
    config = CampaignConfig(azimuths_deg=azimuths, elevations_deg=elevations, n_sweeps=n_sweeps)
    return campaign.run(config, rng)
