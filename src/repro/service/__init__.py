"""`repro.service` — the long-lived selection-service front-end (DESIGN.md §11).

Everything before this package ran one scenario per process: the CLI
built a :class:`~repro.runtime.ScenarioRunner`, executed one spec and
exited.  The service keeps the runtime alive and puts an asyncio HTTP
front door on it:

* :class:`~.server.SelectionService` — validates and digests incoming
  :class:`~repro.runtime.ScenarioSpec` JSON, admits it onto a bounded
  queue (429 past the configured depth), schedules it onto a fixed pool
  of worker threads that each *reuse* one ScenarioRunner across
  requests, journals progress durably (fsync'd checkpoints) so an
  in-flight request survives worker death, and retains a bounded
  history of manifests.
* :class:`~.server.ServiceConfig` — every operational knob (pool size,
  queue depth, durability, retention) in one dataclass.
* :mod:`.registry` — the WAL-style durable run registry (DESIGN.md
  §14): every run state transition journaled with per-entry hashes and
  torn-tail truncation, replayed at startup so a crashed or redeployed
  service re-admits queued runs and resumes in-flight ones.
* :mod:`.client` — a small stdlib HTTP client used by the CLI, the CI
  smoke job and the tests.
* :mod:`.load` — the saturation-finding load harness behind
  ``repro-bench load``; its headline numbers land in BENCH_core.json.

The service deliberately speaks plain HTTP/1.1 over ``asyncio`` streams
(no third-party framework): the request surface is five routes and the
container ships no async HTTP dependency.
"""

from .registry import RunRegistry
from .server import RunRecord, SelectionService, ServiceConfig, serve

__all__ = [
    "RunRecord",
    "RunRegistry",
    "SelectionService",
    "ServiceConfig",
    "serve",
]
