"""Span-based tracing with a process-local buffer and a JSONL sink.

A :class:`TraceRecorder` accumulates *events* — completed spans and
point events — as plain dicts, ready for JSONL.  Spans nest through an
explicit stack: entering ``span("execute.block", policy=...)`` assigns
an id, makes it the parent of everything recorded until exit, and on
exit appends one record carrying the span's monotonic start offset and
duration.

Cross-process discipline: every process records into its *own*
recorder (workers ship their buffers back piggybacked on block
results), and the run's recorder absorbs them with
:meth:`TraceRecorder.absorb` — ids are rewritten under a caller-chosen
prefix and the worker's root spans are re-parented onto the span that
dispatched them.  Callers absorb in a deterministic order (keyed by
policy/call/block like the checkpoint journal, never by wall clock),
so two runs of the same spec produce the same event sequence up to
timing values.  ``start_s`` offsets are relative to each *recorder's*
epoch and are therefore only comparable within one process; analysis
across processes uses durations and the merge order.

Record schema (one JSON object per line in the sink):

* span —  ``{"type": "span", "name": ..., "id": ..., "parent": ...,
  "start_s": ..., "duration_s": ..., "attrs": {...}}``
* event — ``{"type": "event", "name": ..., "id": ..., "parent": ...,
  "start_s": ..., "attrs": {...}}``

The file sink adds a header line ``{"format": "repro-trace",
"version": 1, ...run identity...}`` so ``repro-bench report`` can
refuse foreign files.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "NULL_SPAN",
    "Span",
    "TraceRecorder",
    "RotatingTraceWriter",
    "write_trace_jsonl",
    "read_trace_jsonl",
]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


class _NullSpan:
    """The shared do-nothing span handed out when tracing is off."""

    __slots__ = ()
    id: Optional[str] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


#: One reusable instance — the disabled path allocates nothing.
NULL_SPAN = _NullSpan()


class Span:
    """A live span: context manager recording itself on exit."""

    __slots__ = ("_recorder", "name", "attrs", "id", "parent", "_start")

    def __init__(self, recorder: "TraceRecorder", name: str, attrs: Dict[str, Any]):
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.id: Optional[str] = None
        self.parent: Optional[str] = None
        self._start = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach further attributes before the span closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.id, self.parent = self._recorder._open()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._recorder._close(self, duration)
        return None


class TraceRecorder:
    """Process-local buffer of completed spans and events."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._sequence = 0
        self._stack: List[Tuple[str, float]] = []  # (span id, start offset)
        self.events: List[Dict[str, Any]] = []

    # -- recording ------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event under the currently open span."""
        self._sequence += 1
        self.events.append(
            {
                "type": "event",
                "name": name,
                "id": str(self._sequence),
                "parent": self._stack[-1][0] if self._stack else None,
                "start_s": time.perf_counter() - self._epoch,
                "attrs": attrs,
            }
        )

    def _open(self) -> Tuple[str, Optional[str]]:
        self._sequence += 1
        span_id = str(self._sequence)
        parent = self._stack[-1][0] if self._stack else None
        self._stack.append((span_id, time.perf_counter() - self._epoch))
        return span_id, parent

    def _close(self, span: Span, duration: float) -> None:
        # Pop back to this span even if an exception unwound past
        # children that never reached __exit__ (cannot happen with
        # context-managed spans, but stay safe).
        while self._stack:
            span_id, start = self._stack.pop()
            if span_id == span.id:
                break
        else:  # pragma: no cover - unbalanced exit
            start = 0.0
        self.events.append(
            {
                "type": "span",
                "name": span.name,
                "id": span.id,
                "parent": span.parent,
                "start_s": start,
                "duration_s": duration,
                "attrs": span.attrs,
            }
        )

    # -- cross-process aggregation --------------------------------------

    def drain(self) -> List[Dict[str, Any]]:
        """Hand over the buffer (the worker-side shipping primitive)."""
        events, self.events = self.events, []
        return events

    def absorb(
        self,
        events: Sequence[Mapping[str, Any]],
        parent_id: Optional[str],
        prefix: str,
    ) -> None:
        """Fold another process's drained buffer into this one.

        Every id is namespaced under ``prefix`` (uniqueness across
        workers), parent links inside the buffer are rewritten
        consistently, and the buffer's *root* records are re-parented
        onto ``parent_id`` — the span that dispatched the work — so the
        merged trace reads as one tree.  Callers must absorb in a
        deterministic order; this method preserves it.
        """
        for event in events:
            record = dict(event)
            record["id"] = f"{prefix}.{record['id']}"
            record["parent"] = (
                f"{prefix}.{record['parent']}" if record.get("parent") else parent_id
            )
            record["origin"] = prefix
            self.events.append(record)

    def reset(self) -> None:
        self._epoch = time.perf_counter()
        self._sequence = 0
        self._stack.clear()
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


# ----------------------------------------------------------------------
# JSONL sink.
# ----------------------------------------------------------------------


def write_trace_jsonl(
    path, events: Sequence[Mapping[str, Any]], header: Optional[Mapping[str, Any]] = None
) -> None:
    """Write a trace file: one header line, then one record per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    head: Dict[str, Any] = {"format": TRACE_FORMAT, "version": TRACE_VERSION}
    head.update(header or {})
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(head, sort_keys=True) + "\n")
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")


class RotatingTraceWriter:
    """Append-mode JSONL trace sink with a per-segment size cap.

    A long-lived service tracing every run would grow a single JSONL
    file unboundedly; this writer appends each batch of events to the
    current segment and, once the segment passes ``max_bytes``, seals
    it and opens the next one.  **Every** segment starts with its own
    ``repro-trace`` header line, so each file independently satisfies
    :func:`read_trace_jsonl` and ``repro-bench report`` — rotation
    never leaves a headerless tail.

    Segments are named ``trace.jsonl`` (the configured path), then
    ``trace.1.jsonl``, ``trace.2.jsonl`` … — the base path is always
    the oldest segment, so `--trace` keeps pointing at a valid file.
    Rotation happens *between* batches, never inside one, so a batch's
    events (one service run's trace) always share a segment.
    """

    def __init__(
        self,
        path,
        header: Optional[Mapping[str, Any]] = None,
        max_bytes: int = 64 * 1024 * 1024,
    ):
        if max_bytes < 1024:
            raise ValueError("trace segment cap must be at least 1 KiB")
        self._base = Path(path)
        self._header = dict(header or {})
        self._max_bytes = int(max_bytes)
        self._index = 0
        self._handle = None
        self._written: List[Path] = []

    def segment_path(self, index: int) -> Path:
        if index == 0:
            return self._base
        return self._base.with_name(
            f"{self._base.stem}.{index}{self._base.suffix or '.jsonl'}"
        )

    @property
    def segments(self) -> List[Path]:
        """Every segment written so far, oldest first."""
        return list(self._written)

    def _open_segment(self) -> None:
        path = self.segment_path(self._index)
        path.parent.mkdir(parents=True, exist_ok=True)
        head: Dict[str, Any] = {"format": TRACE_FORMAT, "version": TRACE_VERSION}
        head.update(self._header)
        head["segment"] = self._index
        self._handle = path.open("w", encoding="utf-8")
        self._handle.write(json.dumps(head, sort_keys=True) + "\n")
        self._written.append(path)

    def write(self, events: Sequence[Mapping[str, Any]], **stamp: Any) -> Path:
        """Append one batch of events, stamped with ``stamp`` keys.

        ``stamp`` (e.g. ``run="r000003-…"``) is merged into every
        record so a multi-run segment stays attributable.  Returns the
        segment the batch landed in.
        """
        if self._handle is None:
            self._open_segment()
        for event in events:
            record = dict(event)
            record.update(stamp)
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        path = self._written[-1]
        if self._handle.tell() >= self._max_bytes:
            self._handle.close()
            self._handle = None
            self._index += 1
        return path

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_trace_jsonl(path) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a trace file back as ``(header, events)``.

    Raises:
        ValueError: the file is not a repro trace (wrong header).
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"'{path}' is empty — not a trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise ValueError(f"'{path}' is not a trace file: {error}") from None
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ValueError(f"'{path}' is not a {TRACE_FORMAT} file")
    events = [json.loads(line) for line in lines[1:] if line.strip()]
    return header, events
