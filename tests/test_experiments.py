"""Tests for the experiment harness (reduced configs, full code paths)."""

import numpy as np
import pytest

from repro.experiments import (
    BoxStats,
    Fig7Config,
    Fig8Config,
    Fig9Config,
    Fig10Config,
    Fig11Config,
    Table1Config,
    build_testbed,
    count_lobes,
    random_subsweep,
    record_directions,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_table1,
    stability_of_selections,
)
from repro.channel import conference_room


class TestBoxStats:
    def test_ordering_invariant(self, rng):
        stats = BoxStats.from_samples(rng.normal(size=500))
        assert (
            stats.whisker_low
            <= stats.box_low
            <= stats.median
            <= stats.box_high
            <= stats.whisker_high
        )
        assert stats.n_samples == 500

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_samples([])

    def test_constant_samples(self):
        stats = BoxStats.from_samples([3.0, 3.0, 3.0])
        assert stats.median == stats.whisker_high == 3.0


class TestStability:
    def test_all_same(self):
        assert stability_of_selections([5, 5, 5]) == 1.0

    def test_modal_share(self):
        assert stability_of_selections([1, 1, 2, 3]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stability_of_selections([])


class TestRecordings:
    def test_recording_structure(self, testbed, rng):
        recordings = record_directions(
            testbed, conference_room(6.0), [-10.0, 10.0], [0.0], 3, rng
        )
        assert len(recordings) == 2
        for recording in recordings:
            assert recording.true_snr_db.shape == (34,)
            assert len(recording.sweeps) == 3
            for sweep in recording.sweeps:
                assert set(sweep) <= set(testbed.tx_sector_ids)
            assert recording.optimal_snr_db() == recording.true_snr_db.max()

    def test_random_subsweep_respects_reports(self, testbed, rng):
        recordings = record_directions(
            testbed, conference_room(6.0), [0.0], [0.0], 1, rng
        )
        sweep = recordings[0].sweeps[0]
        subset = random_subsweep(sweep, testbed.tx_sector_ids, 14, rng)
        assert len(subset) <= 14
        for measurement in subset:
            assert sweep[measurement.sector_id] is measurement

    def test_random_subsweep_validates_count(self, testbed, rng):
        with pytest.raises(ValueError):
            random_subsweep({}, testbed.tx_sector_ids, 35, rng)


_FAST7 = Fig7Config(
    probe_counts=(8, 20),
    lab_azimuth_step_deg=20.0,
    lab_elevation_step_deg=15.0,
    conference_azimuth_step_deg=15.0,
    n_sweeps=1,
    subsamples_per_sweep=1,
)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(_FAST7)

    def test_series_aligned(self, result):
        for series in (result.lab, result.conference):
            assert series.probe_counts == [8, 20]
            assert len(series.azimuth_stats) == 2
            assert len(series.elevation_stats) == 2

    def test_error_shrinks_with_probes(self, result):
        assert result.lab.azimuth_median(20) <= result.lab.azimuth_median(8)

    def test_errors_reasonable_at_20_probes(self, result):
        assert result.lab.azimuth_median(20) < 10.0
        assert result.conference.azimuth_median(20) < 10.0

    def test_format_rows(self, result):
        rows = result.format_rows()
        assert any("lab" in row for row in rows)
        assert any("conference" in row for row in rows)


class TestFig8And9:
    @pytest.fixture(scope="class")
    def fig8(self):
        return run_fig8(Fig8Config(probe_counts=(6, 20, 34), azimuth_step_deg=20.0, n_sweeps=12))

    @pytest.fixture(scope="class")
    def fig9(self):
        return run_fig9(Fig9Config(probe_counts=(6, 20, 34), azimuth_step_deg=20.0, n_sweeps=8))

    def test_stability_increases_with_probes(self, fig8):
        assert fig8.css_at(34) > fig8.css_at(6)

    def test_ssw_stability_below_one(self, fig8):
        assert 0.4 < fig8.ssw_stability < 1.0

    def test_css_beats_ssw_at_full_probing(self, fig8):
        assert fig8.css_at(34) > fig8.ssw_stability - 0.05

    def test_loss_decreases_with_probes(self, fig9):
        assert fig9.css_at(34) < fig9.css_at(6)

    def test_ssw_loss_small(self, fig9):
        assert 0.0 < fig9.ssw_loss_db < 2.0

    def test_css_reaches_ssw_quality(self, fig9):
        assert fig9.css_at(34) <= fig9.ssw_loss_db + 0.3

    def test_crossovers_defined(self, fig8, fig9):
        assert fig8.crossover_probes() in fig8.probe_counts
        assert fig9.crossover_probes() in fig9.probe_counts


class TestFig10:
    def test_paper_numbers_exact(self):
        result = run_fig10(Fig10Config())
        assert result.ssw_time_ms == pytest.approx(1.273, abs=0.001)
        assert result.reference_time_ms == pytest.approx(0.553, abs=0.001)
        assert result.speedup == pytest.approx(2.3, abs=0.05)

    def test_linear_in_probes(self):
        result = run_fig10(Fig10Config(probe_counts=(10, 20, 30)))
        times = result.css_time_ms
        assert times[1] - times[0] == pytest.approx(times[2] - times[1])


class TestFig11:
    def test_throughput_magnitudes(self):
        result = run_fig11(Fig11Config(n_intervals=15))
        assert result.directions_deg == [-45.0, 0.0, 45.0]
        for css, ssw in zip(result.css_gbps, result.ssw_gbps):
            assert 0.8 < css <= 1.8
            assert 0.8 < ssw <= 1.8
            # Same order of magnitude as the paper's ~1.5 Gbps.
            assert abs(css - ssw) < 0.5


class TestTable1:
    def test_captures_match_spec(self):
        result = run_table1(Table1Config(n_bursts_per_pose=1))
        assert result.beacon_consistent
        assert result.sweep_consistent
        # Aggregating across poses should confirm most slots.
        assert result.beacon_coverage() > 0.9
        assert result.sweep_coverage() > 0.9


class TestFig5Helpers:
    def test_count_lobes_single(self):
        pattern = np.full(100, -7.0)
        pattern[40:50] = 10.0
        assert count_lobes(pattern) == 1

    def test_count_lobes_two(self):
        pattern = np.full(100, -7.0)
        pattern[10:15] = 10.0
        pattern[60:70] = 9.0
        assert count_lobes(pattern) == 2

    def test_count_lobes_wraps_circularly(self):
        pattern = np.full(100, -7.0)
        pattern[:5] = 10.0
        pattern[-5:] = 10.0  # one lobe across the seam
        assert count_lobes(pattern) == 1
