"""SelectionPolicy adapters for the core selectors.

Thin wrappers that make :class:`CompressiveSectorSelector` and the
stock exhaustive sweep speak the :mod:`repro.runtime` protocol —
registered as ``"css"`` and ``"full-sweep"`` so scenario specs can
name them.

Determinism notes (load-bearing — see DESIGN.md §7/§8):

* ``CompressivePolicy.probes_for_round`` with the default (random)
  strategy makes exactly one ``rng.choice(len(pool), size=n_probes,
  replace=False)`` call — the same call as
  :func:`repro.experiments.common.random_probe_columns` — so plans
  drawn through the policy consume the pinned stream identically to
  the legacy loops.
* ``FullSweepPolicy`` consumes no randomness and replicates the Python
  ``max`` semantics of :class:`SectorSweepSelector` (first element
  kept, replaced only on strictly greater SNR) in its batched kernel.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..geometry.grid import AngularGrid
from ..mac.timing import multi_round_training_time_us
from ..runtime.policy import PolicyContext
from ..runtime.registry import build_probe_designer, register_policy
from .compressive import CompressiveSectorSelector
from .measurements import ProbeMeasurement
from .probes import (
    GainDiverseProbeStrategy,
    RandomProbeStrategy,
    register_builtin_designers,
    seed_designed_subsets,
)
from .selector import SelectionResult

__all__ = ["CompressivePolicy", "FullSweepPolicy", "seed_shared_selector"]

# The designer registrations ride this module's import (load_builtin's
# core hook) — see register_builtin_designers for why not probes.py's.
register_builtin_designers()


def _resolve_table(context: PolicyContext, patterns: str):
    """The pattern table a spec names: measured or ideal-array theory."""
    testbed = context.testbed
    if patterns == "measured":
        return testbed.pattern_table
    if patterns == "theoretical":
        key = ("theoretical-table", id(testbed.pattern_table))
        table = context.cache.get(key)
        if table is None:
            # Lazy import: baselines imports core, so the reverse edge
            # must stay out of module scope.
            from ..baselines.random_beams import theoretical_pattern_table

            table = theoretical_pattern_table(
                testbed.dut_codebook,
                testbed.pattern_table.grid,
                antenna=testbed.dut_antenna,
            )
            context.cache[key] = table
        return table
    raise ValueError("patterns must be 'measured' or 'theoretical'")


def _selector_cache_key(table, fusion, domain, search, fallback_correlation):
    """The shared-selector cache key (one selector per configuration)."""
    return (
        "css-selector",
        id(table),
        fusion,
        domain,
        search,
        float(fallback_correlation),
    )


def _selector_search_grid(table, search):
    if search == "2d":
        return AngularGrid(table.grid.azimuths_deg, np.array([0.0]))
    return None


def seed_shared_selector(spec, context: PolicyContext, views) -> bool:
    """Pre-populate the selector cache from shared-memory kernel views.

    Called by pool workers before :func:`build_policy` so the
    :class:`CompressivePolicy` constructed from ``spec`` finds a
    ready-made selector in ``context.cache`` instead of re-sampling two
    full pattern matrices (~20 ms per worker per policy).  ``views``
    are read-only arrays mapped from a segment the supervisor published
    from its own selector (see :mod:`repro.runtime.shm`) — byte copies
    of what construction would compute, so the seeded worker stays
    bit-identical to a rebuild-from-spec worker.

    Returns True when a selector was seeded (or already cached), False
    when the spec does not describe a shareable selector — callers fall
    back to plain construction.
    """
    if spec.name != "css":
        return False
    kwargs = dict(spec.kwargs)
    if kwargs.get("pattern_table") is not None:
        return False
    if kwargs.get("patterns", "measured") != "measured":
        return False
    fusion = kwargs.get("fusion", "product")
    domain = kwargs.get("domain", "linear")
    search = kwargs.get("search", "3d")
    fallback_correlation = kwargs.get("fallback_correlation", 0.0)
    table = context.testbed.pattern_table
    if getattr(spec, "probe_design", None) is not None:
        # Designed subsets published by the supervisor seed the
        # module-level design cache, so this worker's policy attaches
        # the finished design instead of re-running the greedy search.
        try:
            seed_designed_subsets(spec.probe_design, table, views)
        except (KeyError, ValueError):
            pass  # unknown designer/params: construction will raise
    key = _selector_cache_key(table, fusion, domain, search, fallback_correlation)
    if key in context.cache:
        return True
    context.cache[key] = CompressiveSectorSelector(
        table,
        search_grid=_selector_search_grid(table, search),
        fusion=fusion,
        domain=domain,
        fallback_correlation=fallback_correlation,
        precomputed=views,
    )
    return True


@register_policy("css")
class CompressivePolicy:
    """Compressive sector selection (§2.2) as a runtime policy."""

    multi_round = False

    def __init__(
        self,
        context: PolicyContext,
        n_probes: int = 14,
        fusion: str = "product",
        domain: str = "linear",
        search: str = "3d",
        patterns: str = "measured",
        probe_strategy: Optional[str] = None,
        fallback_correlation: float = 0.0,
        pattern_table=None,
        probe_design=None,
    ):
        """
        Args:
            context: shared testbed + cache.
            n_probes: probes per training (M).
            fusion / domain / fallback_correlation: forwarded to
                :class:`CompressiveSectorSelector`.
            search: ``"3d"`` (full table grid) or ``"2d"``
                (azimuth-only — the ablation's degraded variant).
            patterns: ``"measured"`` or ``"theoretical"``.
            probe_strategy: None (the paper's raw uniform draw),
                ``"random"`` (uniform, sorted — RandomProbeStrategy) or
                ``"gain-diverse"`` (§7's greedy max-min pre-selection).
            pattern_table: direct table override for in-process callers
                (transfer experiment); not spec-serializable — policies
                built with it cannot shard across processes.
            probe_design: optional probe-designer stage — a registry
                name or ``{"designer": name, "params": {...}}`` block
                (the spec-serializable replacement for
                ``probe_strategy``); resolved against this policy's
                pattern table.  Mutually exclusive with
                ``probe_strategy``.
        """
        if search not in ("3d", "2d"):
            raise ValueError("search must be '3d' or '2d'")
        if probe_design is not None and probe_strategy is not None:
            raise ValueError(
                "probe_design and probe_strategy are mutually exclusive"
            )
        table = pattern_table if pattern_table is not None else _resolve_table(
            context, patterns
        )
        self.name = "css"
        self.n_probes = int(n_probes)
        # Only spec-describable measured-pattern selectors may ship
        # their kernels over shared memory: workers must be able to
        # re-derive the cache key below from the spec kwargs alone.
        self._shareable = pattern_table is None and patterns == "measured"
        # Selectors sample two full grid matrices at construction, and
        # policies that differ only in probe count are state-compatible
        # (execute() resets before use) — share one per configuration.
        key = _selector_cache_key(table, fusion, domain, search, fallback_correlation)
        selector = context.cache.get(key)
        if selector is None:
            selector = CompressiveSectorSelector(
                table,
                search_grid=_selector_search_grid(table, search),
                fusion=fusion,
                domain=domain,
                fallback_correlation=fallback_correlation,
            )
            context.cache[key] = selector
        self.selector = selector
        if probe_strategy is None:
            self._strategy = None
        elif probe_strategy == "random":
            self._strategy = RandomProbeStrategy()
        elif probe_strategy == "gain-diverse":
            self._strategy = GainDiverseProbeStrategy(table)
        else:
            raise ValueError(
                "probe_strategy must be None, 'random' or 'gain-diverse'"
            )
        self._designer = (
            build_probe_designer(probe_design, table)
            if probe_design is not None
            else None
        )

    def reset(self) -> None:
        self.selector.reset()

    def probes_for_round(
        self, round_index: int, pool: Sequence[int], rng: np.random.Generator
    ) -> Optional[List[int]]:
        if round_index > 0:
            return None
        # Pool-size validation covers every path (designer, strategy,
        # legacy draw) — a too-small pool is a spec error, not a
        # downstream shape error.
        if self.n_probes > len(pool):
            raise ValueError("cannot probe more sectors than exist")
        if self._designer is not None:
            return list(self._designer.design(self.n_probes, pool, rng))
        if self._strategy is not None:
            return list(self._strategy.choose(self.n_probes, pool, rng))
        # One rng.choice with these exact arguments == the pinned draw
        # of experiments.common.random_probe_columns.
        chosen = rng.choice(len(pool), size=self.n_probes, replace=False)
        return [pool[index] for index in chosen]

    def select(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        return self.selector.select(measurements)

    def select_batch(
        self,
        sector_ids: np.ndarray,
        snr_db: np.ndarray,
        rssi_dbm: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> List[SelectionResult]:
        return self.selector.select_batch(
            sector_ids, snr_db=snr_db, rssi_dbm=rssi_dbm, mask=mask
        )

    def select_fused_batch(
        self,
        sector_ids: np.ndarray,
        snr_db: np.ndarray,
        rssi_dbm: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> List[SelectionResult]:
        """Single-pass fused twin of :meth:`select_batch` (bit-identical)."""
        return self.selector.select_fused_batch(
            sector_ids, snr_db=snr_db, rssi_dbm=rssi_dbm, mask=mask
        )

    def select_fused_stacked(self, parts):
        """Stacked multi-batch twin of :meth:`select_fused_batch` — see
        :meth:`CompressiveSectorSelector.select_fused_stacked`."""
        return self.selector.select_fused_stacked(parts)

    def shared_kernels(self):
        """The precomputed arrays a supervisor may publish over shared
        memory for pool workers (see :mod:`repro.runtime.shm`), or None
        when this policy's selector cannot be re-derived from its spec
        (direct ``pattern_table`` override, theoretical patterns).

        When a deterministic probe designer is attached, the subsets it
        has designed so far (planning runs in the supervisor, so by
        publication time the design for the run's pool is warm) ride
        the same segment as ``design.<k>.pool`` / ``design.<k>.subset``
        pairs — workers seed their design cache from the views instead
        of re-running the greedy search (``seed_designed_subsets``).
        """
        if not self._shareable:
            return None
        estimator = self.selector.estimator
        kernels = {
            "pattern_matrix": estimator._matrix,
            "prepared_matrix": estimator._prepared,
            "candidate_matrix": self.selector._candidate_matrix,
        }
        exporter = getattr(self._designer, "exported_designs", None)
        if callable(exporter):
            for index, (pool, subset) in enumerate(exporter()):
                kernels[f"design.{index}.pool"] = np.asarray(pool, dtype=np.int64)
                kernels[f"design.{index}.subset"] = np.asarray(
                    subset, dtype=np.int64
                )
        return kernels

    def training_time_us(self, probes_used: int, n_rounds: int = 1) -> float:
        return multi_round_training_time_us(probes_used, n_rounds)


@register_policy("full-sweep")
class FullSweepPolicy:
    """The IEEE 802.11ad exhaustive sweep (Eq. 1) as a runtime policy."""

    multi_round = False

    def __init__(self, context: PolicyContext, initial_sector_id: int = 1):
        self.name = "full-sweep"
        self.initial_sector_id = int(initial_sector_id)
        self._last_selection = self.initial_sector_id

    def reset(self) -> None:
        self._last_selection = self.initial_sector_id

    def probes_for_round(
        self, round_index: int, pool: Sequence[int], rng: np.random.Generator
    ) -> Optional[List[int]]:
        if round_index > 0:
            return None
        return list(pool)

    def select(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        if not measurements:
            return SelectionResult(sector_id=self._last_selection, fallback=True)
        best = max(measurements, key=lambda m: m.snr_db)
        self._last_selection = best.sector_id
        return SelectionResult(sector_id=best.sector_id)

    def select_batch(
        self,
        sector_ids: np.ndarray,
        snr_db: np.ndarray,
        rssi_dbm: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> List[SelectionResult]:
        """Row-sequential batched twin of :meth:`select`.

        The per-row argmax is an explicit strictly-greater loop, not
        ``np.argmax``: Python's ``max`` keeps the first element on ties
        and never lets a NaN win, and the batched path must reproduce
        the scalar decisions bit for bit.
        """
        ids = np.asarray(sector_ids)
        snr = np.asarray(snr_db, dtype=float)
        if mask is None:
            valid = np.ones(ids.shape, dtype=bool)
        else:
            valid = np.asarray(mask, dtype=bool)
        results: List[SelectionResult] = []
        for row in range(ids.shape[0]):
            columns = np.flatnonzero(valid[row])
            if columns.size == 0:
                results.append(
                    SelectionResult(sector_id=self._last_selection, fallback=True)
                )
                continue
            best = columns[0]
            for column in columns[1:]:
                if snr[row, column] > snr[row, best]:
                    best = column
            sector_id = int(ids[row, best])
            self._last_selection = sector_id
            results.append(SelectionResult(sector_id=sector_id))
        return results

    def training_time_us(self, probes_used: int, n_rounds: int = 1) -> float:
        return multi_round_training_time_us(probes_used, n_rounds)
