"""The paper's contribution: compressive sector selection and friends."""

from .adaptive import AdaptiveProbeController
from .compressive import CompressiveSectorSelector
from .correlation import correlation_map, normalize_rows, to_linear_power
from .estimator import AngleEstimate, AngleEstimator
from .measurements import ProbeMeasurement, from_sweep_reports
from .oob import OutOfBandPrior, PriorAidedEstimator
from .paths import MultipathSelector, PathEstimate, extract_paths
from .refinement import BeamRefiner, RefinementResult, RefinementStep
from .probes import (
    FixedProbeStrategy,
    GainDiverseProbeStrategy,
    ProbeStrategy,
    RandomProbeStrategy,
)
from .selector import SectorSelector, SectorSweepSelector, SelectionResult
from .tracking import MeasureFn, SectorTracker, TrackStep

__all__ = [
    "AdaptiveProbeController",
    "CompressiveSectorSelector",
    "correlation_map",
    "normalize_rows",
    "to_linear_power",
    "AngleEstimate",
    "AngleEstimator",
    "ProbeMeasurement",
    "from_sweep_reports",
    "MultipathSelector",
    "PathEstimate",
    "extract_paths",
    "OutOfBandPrior",
    "PriorAidedEstimator",
    "BeamRefiner",
    "RefinementResult",
    "RefinementStep",
    "FixedProbeStrategy",
    "GainDiverseProbeStrategy",
    "ProbeStrategy",
    "RandomProbeStrategy",
    "SectorSelector",
    "SectorSweepSelector",
    "SelectionResult",
    "MeasureFn",
    "SectorTracker",
    "TrackStep",
]
