"""Figure 10: mutual training time vs. number of probing sectors.

Pure timing arithmetic over the measured constants (18.0 µs per SSW
frame, 49.1 µs feedback overhead): the full 34-sector mutual sweep
takes 1.27 ms, compressive selection with 14 probes 0.55 ms — the 2.3×
headline speed-up.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Sequence

from ..mac.timing import (
    N_FULL_SWEEP_SECTORS,
    mutual_training_time_us,
    training_speedup,
)
from ..runtime.registry import register_scenario
from ..runtime.runner import ScenarioRunner
from ..runtime.spec import ScenarioSpec

__all__ = ["Fig10Config", "Fig10Result", "run_fig10", "fig10_spec"]


@dataclass(frozen=True)
class Fig10Config:
    probe_counts: Sequence[int] = tuple(range(12, 39, 2))
    css_reference_probes: int = 14


@dataclass
class Fig10Result:
    probe_counts: List[int]
    css_time_ms: List[float]
    ssw_time_ms: float
    reference_probes: int

    @property
    def reference_time_ms(self) -> float:
        return self.css_time_ms[self.probe_counts.index(self.reference_probes)]

    @property
    def speedup(self) -> float:
        return self.ssw_time_ms / self.reference_time_ms

    def format_rows(self) -> List[str]:
        rows = [
            "fig10: mutual training time",
            f"SSW ({N_FULL_SWEEP_SECTORS} sectors): {self.ssw_time_ms:.2f} ms",
            "probes | CSS time [ms]",
        ]
        for n_probes, time_ms in zip(self.probe_counts, self.css_time_ms):
            marker = (
                f" <- {self.speedup:.1f}x speed-up"
                if n_probes == self.reference_probes
                else ""
            )
            rows.append(f"{n_probes:6d} | {time_ms:.3f}{marker}")
        return rows


def fig10_spec(config: Fig10Config = Fig10Config()) -> ScenarioSpec:
    """The declarative form of a Figure 10 run (no randomness at all)."""
    return ScenarioSpec(scenario="fig10", params=asdict(config))


def _config_from_spec(spec: ScenarioSpec) -> Fig10Config:
    return Fig10Config(**spec.params)


@register_scenario("fig10", default_spec=fig10_spec)
def _run_fig10_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> Fig10Result:
    """Figure 10: mutual training time vs. probe count."""
    config = _config_from_spec(spec)
    css_time_ms = [
        mutual_training_time_us(n_probes) / 1000.0 for n_probes in config.probe_counts
    ]
    return Fig10Result(
        probe_counts=list(config.probe_counts),
        css_time_ms=css_time_ms,
        ssw_time_ms=mutual_training_time_us(N_FULL_SWEEP_SECTORS) / 1000.0,
        reference_probes=config.css_reference_probes,
    )


def run_fig10(config: Fig10Config = Fig10Config()) -> Fig10Result:
    """Compute the training-time series of Figure 10."""
    return ScenarioRunner().run(fig10_spec(config)).result
