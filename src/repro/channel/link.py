"""Link simulation: antennas + rays → received power and SNR.

The simulator combines the ground-truth sector patterns with the
environment's rays coherently (complex sum with per-ray carrier phase),
which reproduces the constructive/destructive multipath behaviour that
makes conference-room measurements noisier than chamber ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..geometry.rotation import Orientation
from ..phased_array.array import PhasedArray
from ..phased_array.elements import DEFAULT_CARRIER_HZ, wavelength_m
from ..phased_array.weights import WeightVector
from .environment import Environment
from .pathloss import path_loss_db
from .rays import Ray

__all__ = ["LinkBudget", "LinkSimulator"]


@dataclass(frozen=True)
class LinkBudget:
    """Radio constants of the 802.11ad link.

    Defaults are calibrated so that sector-sweep SNR readings land in
    the QCA9500's −7 … 12 dB reporting window for the paper's setups:
    with the best TX sector and the quasi-omni RX sector, the chamber
    link at 3 m peaks right at the clip and the 6 m conference-room
    link around 9 dB, while the beamformed data phase (both ends
    directive) gains roughly 15 dB on top.
    """

    tx_power_dbm: float = 7.0
    noise_figure_db: float = 10.0
    bandwidth_hz: float = 1.76e9
    carrier_hz: float = DEFAULT_CARRIER_HZ

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0 or self.carrier_hz <= 0:
            raise ValueError("bandwidth and carrier must be positive")

    @property
    def noise_floor_dbm(self) -> float:
        """Thermal noise power plus noise figure."""
        return -174.0 + 10.0 * np.log10(self.bandwidth_hz) + self.noise_figure_db


class LinkSimulator:
    """Computes received power between two sectored stations."""

    def __init__(
        self,
        environment: Environment,
        tx_antenna: PhasedArray,
        rx_antenna: PhasedArray,
        budget: Optional[LinkBudget] = None,
        tx_position_m: Optional[np.ndarray] = None,
        rx_position_m: Optional[np.ndarray] = None,
    ):
        """Build a simulator for one link direction.

        ``tx_position_m`` / ``rx_position_m`` override the environment's
        default endpoints — pass them swapped for the reverse direction
        or set one to a monitor position.
        """
        self.environment = environment
        self.tx_antenna = tx_antenna
        self.rx_antenna = rx_antenna
        self.budget = budget if budget is not None else LinkBudget()
        tx_position = (
            environment.tx_position_m if tx_position_m is None else np.asarray(tx_position_m)
        )
        rx_position = (
            environment.rx_position_m if rx_position_m is None else np.asarray(rx_position_m)
        )
        self._rays = environment.rays_between(tx_position, rx_position)
        self._wavelength_m = wavelength_m(self.budget.carrier_hz)

    @property
    def rays(self) -> List[Ray]:
        """The propagation rays of the environment (LOS first)."""
        return list(self._rays)

    def sample_shadowing_db(self, rng: Optional[np.random.Generator]) -> np.ndarray:
        """Slow per-ray shadowing for one channel coherence period.

        Sector sweeps complete in ~1 ms, far inside the coherence time
        of an indoor channel, so one draw is shared by every sector
        probed within a sweep.
        """
        if rng is None or self.environment.shadowing_std_db == 0.0:
            return np.zeros(len(self._rays))
        return rng.normal(0.0, self.environment.shadowing_std_db, size=len(self._rays))

    def received_power_dbm(
        self,
        tx_weights: WeightVector,
        rx_weights: WeightVector,
        tx_orientation: Orientation = Orientation(),
        rx_orientation: Optional[Orientation] = None,
        shadowing_db: Optional[np.ndarray] = None,
    ) -> float:
        """Coherent received power over all rays (dBm).

        Args:
            tx_weights / rx_weights: active sector weight vectors.
            tx_orientation: pose of the transmitter (rotation head).
            rx_orientation: pose of the receiver; by default it faces
                the transmitter straight on (yaw 180° in world frame).
            shadowing_db: per-ray shadowing from
                :meth:`sample_shadowing_db`; zeros when omitted.
        """
        if rx_orientation is None:
            rx_orientation = Orientation(yaw_deg=180.0)
        if shadowing_db is None:
            shadowing_db = np.zeros(len(self._rays))
        shadowing_db = np.asarray(shadowing_db, dtype=float)
        if shadowing_db.shape != (len(self._rays),):
            raise ValueError("shadowing vector must have one entry per ray")

        field_sum = 0.0 + 0.0j
        for ray, shadow_db in zip(self._rays, shadowing_db):
            tx_az, tx_el = tx_orientation.world_direction_in_device_frame(
                *ray.departure_direction()
            )
            rx_az, rx_el = rx_orientation.world_direction_in_device_frame(
                *ray.arrival_direction()
            )
            gain_tx_db = self.tx_antenna.gain_db(tx_weights, tx_az, tx_el)
            gain_rx_db = self.rx_antenna.gain_db(rx_weights, rx_az, rx_el)
            amplitude_db = (
                self.budget.tx_power_dbm
                + gain_tx_db
                + gain_rx_db
                - path_loss_db(ray.path_length_m, self.budget.carrier_hz)
                - ray.extra_loss_db
                - shadow_db
            )
            phase = -2.0 * np.pi * ray.path_length_m / self._wavelength_m
            field_sum += 10.0 ** (amplitude_db / 20.0) * np.exp(1j * phase)

        power_linear = max(abs(field_sum) ** 2, 1e-30)
        return float(10.0 * np.log10(power_linear))

    def true_snr_db(
        self,
        tx_weights: WeightVector,
        rx_weights: WeightVector,
        tx_orientation: Orientation = Orientation(),
        rx_orientation: Optional[Orientation] = None,
        shadowing_db: Optional[np.ndarray] = None,
    ) -> float:
        """Ground-truth SNR before any firmware measurement effects."""
        power = self.received_power_dbm(
            tx_weights, rx_weights, tx_orientation, rx_orientation, shadowing_db
        )
        return power - self.budget.noise_floor_dbm
