"""Fixed-capacity ring buffer for sweep measurement reports.

The signal-strength extraction patch writes one report per received
SSW frame into a ring buffer in firmware data memory; the host driver
drains it from user space.  When the host is slow, old entries are
overwritten — the buffer keeps count so tests can assert on losses.
"""

from __future__ import annotations

from typing import Generic, List, TypeVar

T = TypeVar("T")

__all__ = ["RingBuffer"]


class RingBuffer(Generic[T]):
    """A bounded FIFO that overwrites its oldest entry when full."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._entries: List[T] = []
        self._dropped = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped_count(self) -> int:
        """Number of entries overwritten before being read."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, entry: T) -> None:
        """Append an entry, evicting the oldest one when full."""
        if len(self._entries) == self._capacity:
            self._entries.pop(0)
            self._dropped += 1
        self._entries.append(entry)

    def peek_all(self) -> List[T]:
        """Read all entries without consuming them."""
        return list(self._entries)

    def drain(self) -> List[T]:
        """Read and remove all entries (what the driver ioctl does)."""
        entries = self._entries
        self._entries = []
        return entries

    def clear(self) -> None:
        self._entries = []
