"""Unit tests for the QCA9500 memory map (paper Figure 1)."""

import pytest

from repro.firmware import MemoryProtectionError, QCA9500MemoryMap


@pytest.fixture
def memory() -> QCA9500MemoryMap:
    return QCA9500MemoryMap()


class TestLayout:
    def test_four_regions_two_per_core(self, memory):
        assert len(memory.regions) == 4
        by_core = {"ucode": 0, "firmware": 0}
        for region in memory.regions:
            by_core[region.processor] += 1
        assert by_core == {"ucode": 2, "firmware": 2}

    def test_each_core_has_code_and_data(self, memory):
        kinds = {(region.processor, region.is_code) for region in memory.regions}
        assert kinds == {
            ("ucode", True),
            ("ucode", False),
            ("firmware", True),
            ("firmware", False),
        }

    def test_high_remaps_match_figure(self, memory):
        assert memory.region_by_name("ucode-code").high_start == 0x920000
        assert memory.region_by_name("ucode-data").high_start == 0x940000
        assert memory.region_by_name("firmware-code").high_start == 0x8C0000
        assert memory.region_by_name("firmware-data").high_start == 0x900000

    def test_patch_areas_inside_high_code_regions(self, memory):
        for processor in ("ucode", "firmware"):
            start, end = memory.patch_area(processor)
            code = memory.region_by_name(f"{processor}-code")
            assert code.high_start <= start < end <= code.high_end

    def test_unknown_region_name(self, memory):
        with pytest.raises(KeyError):
            memory.region_by_name("bogus")

    def test_unknown_patch_processor(self, memory):
        with pytest.raises(ValueError):
            memory.patch_area("dsp")


class TestAccess:
    def test_low_code_writes_blocked(self, memory):
        with pytest.raises(MemoryProtectionError):
            memory.write(0x000010, b"\x01")

    def test_low_data_writes_allowed(self, memory):
        data_region = memory.region_by_name("ucode-data")
        memory.write(data_region.low_start + 4, b"\xab")
        assert memory.read(data_region.low_start + 4, 1) == b"\xab"

    def test_high_alias_bypasses_write_protection(self, memory):
        """The Nexmon trick: code is writable through the high remap."""
        code = memory.region_by_name("ucode-code")
        memory.write(code.high_start + 0x40, b"\xde\xad")
        # The write is visible through the protected low alias.
        assert memory.read(code.low_start + 0x40, 2) == b"\xde\xad"

    def test_aliases_share_storage_both_ways(self, memory):
        data = memory.region_by_name("firmware-data")
        memory.write(data.low_start + 8, b"\x77")
        assert memory.read(data.high_start + 8, 1) == b"\x77"

    def test_unmapped_address_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.read(0x500000, 1)
        with pytest.raises(ValueError):
            memory.write(0x500000, b"\x00")

    def test_cross_boundary_access_rejected(self, memory):
        code = memory.region_by_name("ucode-code")
        with pytest.raises(ValueError):
            memory.read(code.low_end - 1, 2)
        with pytest.raises(ValueError):
            memory.write(code.high_end - 1, b"\x00\x00")

    def test_free_bytes_accounting(self, memory):
        start, end = memory.patch_area("ucode")
        assert memory.patch_area_free_bytes("ucode", 0) == end - start
        assert memory.patch_area_free_bytes("ucode", 0x100) == end - start - 0x100
