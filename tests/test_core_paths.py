"""Tests for multi-path extraction and the standby selector."""

import numpy as np
import pytest

from repro.core import MultipathSelector, PathEstimate, ProbeMeasurement, extract_paths
from repro.geometry import AngularGrid


@pytest.fixture
def grid() -> AngularGrid:
    return AngularGrid(np.arange(-90.0, 91.0, 2.0), np.arange(0.0, 33.0, 4.0))


def surface_with_peaks(grid, peaks):
    """A synthetic correlation map with Gaussian bumps."""
    azimuths, elevations = grid.flat_angles()
    surface = np.zeros(grid.n_points)
    for azimuth, elevation, height, width in peaks:
        distance_sq = (azimuths - azimuth) ** 2 + (elevations - elevation) ** 2
        surface += height * np.exp(-distance_sq / (2.0 * width**2))
    return surface


class TestExtractPaths:
    def test_finds_two_separated_peaks(self, grid):
        surface = surface_with_peaks(grid, [(-30, 0, 1.0, 5.0), (40, 8, 0.7, 5.0)])
        paths = extract_paths(surface, grid, n_paths=2)
        assert len(paths) == 2
        assert paths[0].azimuth_deg == pytest.approx(-30.0, abs=2.0)
        assert paths[1].azimuth_deg == pytest.approx(40.0, abs=2.0)
        assert paths[0].correlation > paths[1].correlation
        assert [p.rank for p in paths] == [0, 1]

    def test_exclusion_zone_suppresses_sidelobes(self, grid):
        # One broad peak: the second "peak" would be its own shoulder.
        surface = surface_with_peaks(grid, [(0, 0, 1.0, 8.0)])
        paths = extract_paths(surface, grid, n_paths=3, min_separation_deg=20.0)
        assert len(paths) == 1

    def test_relative_threshold_drops_noise_peaks(self, grid):
        surface = surface_with_peaks(grid, [(-30, 0, 1.0, 4.0), (50, 0, 0.1, 4.0)])
        paths = extract_paths(surface, grid, n_paths=2, min_relative_correlation=0.5)
        assert len(paths) == 1

    def test_separation_metric(self):
        a = PathEstimate(0.0, 0.0, 1.0, 0)
        b = PathEstimate(30.0, 0.0, 0.5, 1)
        assert a.separation_from(b) == pytest.approx(30.0)

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            extract_paths(np.zeros(5), grid)
        with pytest.raises(ValueError):
            extract_paths(np.zeros(grid.n_points), grid, n_paths=0)


class TestMultipathSelector:
    def _measurements(self, pattern_table, azimuth, elevation, sector_ids):
        return [
            ProbeMeasurement(
                s,
                float(pattern_table.gain(s, azimuth, elevation)),
                float(pattern_table.gain(s, azimuth, elevation)) - 71.5,
            )
            for s in sector_ids
        ]

    def test_primary_path_matches_truth(self, pattern_table):
        selector = MultipathSelector(pattern_table)
        sector_ids = selector.candidate_sector_ids[:16]
        paths = selector.select_paths(
            self._measurements(pattern_table, -20.0, 4.0, sector_ids)
        )
        assert paths
        primary, sector_id = paths[0]
        assert abs(primary.azimuth_deg - (-20.0)) <= 6.0
        assert sector_id in selector.candidate_sector_ids

    def test_backup_sector_differs_from_primary(self, pattern_table):
        selector = MultipathSelector(pattern_table)
        sector_ids = selector.candidate_sector_ids[:16]
        paths = selector.select_paths(
            self._measurements(pattern_table, 10.0, 0.0, sector_ids),
            n_paths=3,
            min_relative_correlation=0.0,
        )
        sectors = [sector_id for _, sector_id in paths]
        assert len(sectors) == len(set(sectors))

    def test_too_few_probes_returns_empty(self, pattern_table):
        selector = MultipathSelector(pattern_table)
        assert selector.select_paths([]) == []
        assert selector.select_paths([ProbeMeasurement(1, 5.0, -66.0)]) == []

    def test_paths_ordered_by_correlation(self, pattern_table):
        selector = MultipathSelector(pattern_table)
        sector_ids = selector.candidate_sector_ids[:20]
        paths = selector.select_paths(
            self._measurements(pattern_table, 0.0, 0.0, sector_ids),
            n_paths=3,
            min_relative_correlation=0.0,
        )
        correlations = [path.correlation for path, _ in paths]
        assert correlations == sorted(correlations, reverse=True)
