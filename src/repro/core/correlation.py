"""The compressive correlation kernel (paper Eq. 2).

Given the received signal-strength vector over the probed sectors and
the expected per-direction pattern vectors, the correlation map is::

    W(φ, θ) = ⟨ p/‖p‖ , x(φ,θ)/‖x(φ,θ)‖ ⟩²

Correlation is computed in the **linear power domain** by default:
signal strengths in dB shift additively with link distance, which would
break the scale-invariant normalized inner product, whereas in linear
power the shift becomes a pure scale that normalization removes.  The
dB domain remains available for the ablation study.

Two call paths share one arithmetic core (:func:`_correlate`):

* :func:`correlation_map` is the **reference implementation** — it
  transforms probes and patterns on every call.
* :func:`prepare_pattern_matrix` + :func:`correlation_map_prepared`
  and :func:`correlation_map_batch` form the **throughput path**: the
  (fixed) pattern matrix is converted to the correlation domain once,
  so per-call work is limited to the M probe values.  Both paths
  produce bit-for-bit identical results because the domain transform
  is elementwise (transform-then-gather equals gather-then-transform)
  and the core runs the same operations in the same order on the same
  compacted operands.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "to_linear_power",
    "normalize_rows",
    "prepare_pattern_matrix",
    "correlation_map",
    "correlation_map_prepared",
    "correlation_map_batch",
]

_EPSILON = 1e-12

_DOMAINS = ("linear", "db")


def to_linear_power(values_db: np.ndarray) -> np.ndarray:
    """Convert dB values to linear power.

    Inputs are clamped to ±200 dB — far beyond any physical signal —
    so that corrupted readings cannot overflow the float range.
    ``minimum(maximum(x, lo), hi)`` is elementwise identical to
    ``np.clip`` (NaN propagates through both) without the dispatch
    overhead, which matters for the per-probe-vector calls on the hot
    selection path.
    """
    values = np.asarray(values_db, dtype=float)
    clamped = np.minimum(np.maximum(values, -200.0), 200.0)
    return 10.0 ** (clamped / 10.0)


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Scale each row of a matrix to unit Euclidean norm."""
    matrix = np.asarray(matrix, dtype=float)
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return matrix / np.maximum(norms, _EPSILON)


def _check_domain(domain: str) -> None:
    if domain not in _DOMAINS:
        raise ValueError("domain must be 'linear' or 'db'")


def _to_domain(values_db: np.ndarray, domain: str) -> np.ndarray:
    """Elementwise transform into the correlation domain."""
    if domain == "linear":
        return to_linear_power(values_db)
    return np.asarray(values_db, dtype=float)


def prepare_pattern_matrix(pattern_matrix_db: np.ndarray, domain: str = "linear") -> np.ndarray:
    """Convert a pattern matrix into the correlation domain **once**.

    The result feeds :func:`correlation_map_prepared` /
    :func:`correlation_map_batch` (with ``prepared=True``) and any
    row-gathered slice of it is bitwise identical to transforming the
    slice directly — the transform is elementwise.
    """
    _check_domain(domain)
    patterns = np.asarray(pattern_matrix_db, dtype=float)
    if patterns.ndim != 2:
        raise ValueError("pattern matrix must be 2-D")
    return _to_domain(patterns, domain)


def _unit_columns(patterns: np.ndarray) -> np.ndarray:
    """Normalize each grid point's pattern vector (a column) to unit norm.

    ``sqrt(add.reduce(x*x, axis=0))`` is exactly what
    ``np.linalg.norm(x, axis=0)`` computes for real input; calling the
    ufuncs directly skips the wrapper overhead that dominates the
    per-trial batch loop.
    """
    with np.errstate(invalid="ignore", divide="ignore"):
        column_norms = np.sqrt(np.add.reduce(patterns * patterns, axis=0))
        return patterns / np.maximum(column_norms, _EPSILON)


def _correlate_core(probes: np.ndarray, pattern_unit: np.ndarray) -> np.ndarray:
    """Eq. 2 arithmetic with no errstate guard of its own.

    ``sqrt(x.dot(x))`` is ``np.linalg.norm``'s own 1-D real-input
    branch, inlined for the same reason as in :func:`_unit_columns`.
    Callers that evaluate many probe vectors in one pass (the fused
    selection kernel) enter a single ``np.errstate`` block around their
    whole loop instead of paying the context-manager entry per row;
    everyone else goes through :func:`_correlate`.  The guard only
    masks warnings — it never changes a computed value — so both entry
    points are bit-for-bit identical.
    """
    probe_unit = probes / max(np.sqrt(probes.dot(probes)), _EPSILON)
    correlation = probe_unit @ pattern_unit
    return correlation**2


def _correlate(probes: np.ndarray, pattern_unit: np.ndarray) -> np.ndarray:
    """Eq. 2 core on domain-transformed probes and unit-column patterns."""
    # NaN-padded probe rows (masked-out slots) propagate NaN through the
    # dot products by design; silence the spurious invalid-divide signal
    # here rather than in every caller (warnings dedupe by source line).
    with np.errstate(invalid="ignore", divide="ignore"):
        return _correlate_core(probes, pattern_unit)


def correlation_map(
    probe_values_db: np.ndarray,
    pattern_matrix_db: np.ndarray,
    domain: str = "linear",
) -> np.ndarray:
    """Eq. 2 evaluated on every grid point at once (reference path).

    Args:
        probe_values_db: received signal strengths, shape ``(M,)`` — one
            per probed sector that produced a report.
        pattern_matrix_db: expected patterns of those same sectors on
            the search grid, shape ``(M, K)``.
        domain: ``"linear"`` (default, offset-invariant) or ``"db"``.

    Returns:
        Correlation ``W`` per grid point, shape ``(K,)``, in ``[0, 1]``.
    """
    probes = np.asarray(probe_values_db, dtype=float)
    patterns = np.asarray(pattern_matrix_db, dtype=float)
    if probes.ndim != 1:
        raise ValueError("probe values must be a 1-D vector")
    if patterns.ndim != 2 or patterns.shape[0] != probes.size:
        raise ValueError(
            f"pattern matrix shape {patterns.shape} does not match "
            f"{probes.size} probe values"
        )
    _check_domain(domain)
    return _correlate(_to_domain(probes, domain), _unit_columns(_to_domain(patterns, domain)))


def correlation_map_prepared(
    probe_values_db: np.ndarray,
    prepared_patterns: np.ndarray,
    domain: str = "linear",
) -> np.ndarray:
    """Eq. 2 against a matrix already converted by :func:`prepare_pattern_matrix`.

    Only the ``M`` probe values are transformed per call; the result is
    bitwise identical to :func:`correlation_map` on the dB matrix.
    """
    probes = np.asarray(probe_values_db, dtype=float)
    patterns = np.asarray(prepared_patterns, dtype=float)
    if probes.ndim != 1:
        raise ValueError("probe values must be a 1-D vector")
    if patterns.ndim != 2 or patterns.shape[0] != probes.size:
        raise ValueError(
            f"pattern matrix shape {patterns.shape} does not match "
            f"{probes.size} probe values"
        )
    _check_domain(domain)
    return _correlate(_to_domain(probes, domain), _unit_columns(patterns))


def correlation_map_batch(
    probe_matrix_db: np.ndarray,
    mask: Optional[np.ndarray],
    pattern_matrix_db: np.ndarray,
    domain: str = "linear",
    prepared: bool = False,
) -> np.ndarray:
    """Eq. 2 over a padded batch of probe vectors.

    Row ``t`` of the result equals ``correlation_map(probes[t][mask[t]],
    patterns[mask[t]], domain)`` **bit for bit**: the probe transform is
    applied to the whole padded matrix (elementwise, so padding cannot
    leak into valid entries) and each row's valid entries are compacted
    before entering the same arithmetic core as the scalar kernel.

    Args:
        probe_matrix_db: padded probe values, shape ``(T, M)``.
        mask: boolean validity mask, shape ``(T, M)``; ``None`` means
            every entry is valid.  Invalid entries may hold any float
            (NaN padding is conventional).
        pattern_matrix_db: patterns of the ``M`` probe slots on the
            search grid, shape ``(M, K)``, shared by every row.
        domain: correlation domain.
        prepared: when True, ``pattern_matrix_db`` was already converted
            by :func:`prepare_pattern_matrix` and is used as-is.

    Returns:
        Correlation surface per row, shape ``(T, K)``.  Rows with no
        valid entry are all-NaN.
    """
    probes = np.asarray(probe_matrix_db, dtype=float)
    if probes.ndim != 2:
        raise ValueError("probe matrix must be 2-D (trials x probes)")
    patterns = np.asarray(pattern_matrix_db, dtype=float)
    if patterns.ndim != 2 or patterns.shape[0] != probes.shape[1]:
        raise ValueError(
            f"pattern matrix shape {patterns.shape} does not match "
            f"{probes.shape[1]} probe slots"
        )
    _check_domain(domain)
    if mask is None:
        valid = np.ones(probes.shape, dtype=bool)
    else:
        valid = np.asarray(mask, dtype=bool)
        if valid.shape != probes.shape:
            raise ValueError(
                f"mask shape {valid.shape} does not match probe matrix "
                f"shape {probes.shape}"
            )
    if not prepared:
        patterns = _to_domain(patterns, domain)
    with np.errstate(invalid="ignore", over="ignore"):
        probes_domain = _to_domain(probes, domain)

    surfaces = np.full((probes.shape[0], patterns.shape[1]), np.nan)
    for row in range(probes.shape[0]):
        index = np.flatnonzero(valid[row])
        if index.size == 0:
            continue
        surfaces[row] = _correlate(
            probes_domain[row, index], _unit_columns(patterns[index])
        )
    return surfaces
