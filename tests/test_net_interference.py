"""Tests for the directional interference graph."""

import numpy as np
import pytest

from repro.channel import conference_room
from repro.geometry import Orientation
from repro.net import DirectionalLink, InterferenceGraph


def make_link(testbed, name, y_offset, sector_id=63):
    return DirectionalLink(
        name=name,
        tx_position_m=np.array([0.0, y_offset, 0.0]),
        rx_position_m=np.array([6.0, y_offset, 0.0]),
        tx_orientation=Orientation(),
        rx_orientation=Orientation(yaw_deg=180.0),
        tx_weights=testbed.dut_codebook[sector_id].weights,
        rx_weights=testbed.dut_codebook.rx_sector.weights,
    )


@pytest.fixture(scope="module")
def testbed():
    from repro.experiments.common import build_testbed

    return build_testbed()


@pytest.fixture(scope="module")
def room():
    return conference_room(6.0)


class TestInterferenceGraph:
    def test_single_link_has_no_interference(self, testbed, room):
        graph = InterferenceGraph(room, testbed.dut_antenna, [make_link(testbed, "a", 0.0)])
        assert np.isneginf(graph.interference_power_dbm(graph.links[0]))
        # Without interferers SINR equals SNR.
        assert graph.reuse_penalty_db(graph.links[0]) == pytest.approx(0.0, abs=1e-6)

    def test_sinr_below_snr_with_neighbour(self, testbed, room):
        links = [make_link(testbed, "a", 0.0), make_link(testbed, "b", 1.0)]
        graph = InterferenceGraph(room, testbed.dut_antenna, links)
        for link in links:
            assert graph.reuse_penalty_db(link) > 0.0

    def test_penalty_shrinks_with_separation(self, testbed, room):
        def penalty(separation):
            links = [make_link(testbed, "a", 0.0), make_link(testbed, "b", separation)]
            graph = InterferenceGraph(room, testbed.dut_antenna, links)
            return graph.reuse_penalty_db(graph.links[0])

        assert penalty(0.5) > penalty(1.5) > penalty(3.0)

    def test_more_interferers_more_interference(self, testbed, room):
        two = InterferenceGraph(
            room, testbed.dut_antenna,
            [make_link(testbed, "a", 0.0), make_link(testbed, "b", 1.5)],
        )
        three = InterferenceGraph(
            room, testbed.dut_antenna,
            [
                make_link(testbed, "a", 0.0),
                make_link(testbed, "b", 1.5),
                make_link(testbed, "c", -1.5),
            ],
        )
        victim_two = two.links[0]
        victim_three = three.links[0]
        assert three.interference_power_dbm(victim_three) > two.interference_power_dbm(
            victim_two
        )

    def test_all_sinr_covers_every_link(self, testbed, room):
        links = [make_link(testbed, name, y) for name, y in (("a", 0.0), ("b", 2.0))]
        graph = InterferenceGraph(room, testbed.dut_antenna, links)
        sinr = graph.all_sinr_db()
        assert set(sinr) == {"a", "b"}
        assert all(np.isfinite(v) for v in sinr.values())

    def test_validation(self, testbed, room):
        with pytest.raises(ValueError):
            InterferenceGraph(room, testbed.dut_antenna, [])
        with pytest.raises(ValueError):
            InterferenceGraph(
                room,
                testbed.dut_antenna,
                [make_link(testbed, "a", 0.0), make_link(testbed, "a", 1.0)],
            )
