#!/usr/bin/env python3
"""Three extensions the paper's §7/§8 sketch, running on its substrate.

1. **Out-of-band priors** (Nitsche et al., Ali et al.): a coarse
   2.4 GHz direction estimate weights the correlation map, rescuing
   tiny probe budgets.
2. **BRP-style refinement**: after CSS picks a sector, hill-climb the
   2-bit AWV for another dB — in microseconds, not sweeps.
3. **Multi-path extraction**: the same correlation surface exposes a
   backup path and standby sector at no extra probing cost.

Run:  python examples/beyond_the_paper.py
"""

import numpy as np

from repro.channel import LinkSimulator, conference_room
from repro.core import (
    AngleEstimator,
    BeamRefiner,
    CompressiveSectorSelector,
    MultipathSelector,
    OutOfBandPrior,
    PriorAidedEstimator,
    ProbeMeasurement,
)
from repro.experiments import build_testbed, random_subsweep, record_directions
from repro.geometry import Orientation, azimuth_difference


def main() -> None:
    rng = np.random.default_rng(99)
    testbed = build_testbed()
    tx_ids = testbed.tx_sector_ids
    room = conference_room(6.0)

    # --- 1. Out-of-band prior at M=5 probes. ---------------------------
    print("1) out-of-band prior at 5 probes")
    recordings = record_directions(testbed, room, np.arange(-40.0, 41.0, 20.0), [0.0], 3, rng)
    estimator = PriorAidedEstimator(AngleEstimator(testbed.pattern_table))
    for use_prior in (False, True):
        errors = []
        for recording in recordings:
            prior = (
                OutOfBandPrior(recording.azimuth_deg + rng.normal(0, 8.0), sigma_deg=16.0)
                if use_prior
                else None
            )
            for sweep in recording.sweeps:
                measurements = random_subsweep(sweep, tx_ids, 5, rng)
                if len(measurements) < 2:
                    continue
                estimate = estimator.estimate(measurements, prior=prior)
                errors.append(
                    abs(azimuth_difference(estimate.azimuth_deg, recording.azimuth_deg))
                )
        label = "with 2.4 GHz prior" if use_prior else "no prior          "
        print(f"   {label}: mean azimuth error {np.mean(errors):5.1f} deg")

    # --- 2. BRP refinement after CSS. -----------------------------------
    print("\n2) AWV refinement after CSS-14 (direction -20 deg)")
    orientation = Orientation(yaw_deg=20.0)
    simulator = LinkSimulator(room, testbed.dut_antenna, testbed.ref_antenna, testbed.budget)

    def measure(weights):
        true = simulator.true_snr_db(
            weights, testbed.ref_codebook.rx_sector.weights, tx_orientation=orientation
        )
        return true + rng.normal(0.0, 0.3)

    selector = CompressiveSectorSelector(testbed.pattern_table)
    recording = record_directions(testbed, room, [-20.0], [0.0], 1, rng)[0]
    measurements = random_subsweep(recording.sweeps[0], tx_ids, 14, rng)
    chosen = selector.select(measurements).sector_id
    outcome = BeamRefiner(candidates_per_iteration=6).refine(
        testbed.dut_codebook[chosen].weights, measure, rng, n_iterations=12
    )
    print(f"   CSS picked sector {chosen}: {outcome.initial_snr_db:5.2f} dB")
    print(
        f"   refined AWV:            {outcome.final_snr_db:5.2f} dB "
        f"(+{outcome.improvement_db:.2f} dB in {outcome.airtime_us:.0f} us on air)"
    )

    # --- 3. Multi-path standby sector. ----------------------------------
    print("\n3) multi-path extraction (same probes, extra path)")
    multipath = MultipathSelector(testbed.pattern_table)
    full_sweep = [m for m in recording.sweeps[0].values()]
    paths = multipath.select_paths(full_sweep, n_paths=3, min_relative_correlation=0.05)
    for path, sector_id in paths:
        true_snr = recording.true_snr_db[tx_ids.index(sector_id)]
        print(
            f"   path {path.rank}: ({path.azimuth_deg:+6.1f}, {path.elevation_deg:+5.1f}) deg, "
            f"correlation {path.correlation:.3f} -> sector {sector_id} "
            f"({true_snr:+.1f} dB if used)"
        )


if __name__ == "__main__":
    main()
