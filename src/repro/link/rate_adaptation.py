"""SNR-driven rate adaptation with hysteresis.

Real devices do not hop MCS on every SNR reading — they apply
hysteresis so that a fluctuating measurement does not thrash the rate.
The adapter mirrors that: stepping *up* requires clearing the next
threshold by a margin; stepping *down* happens as soon as the current
MCS's threshold is violated.
"""

from __future__ import annotations

from typing import Optional

from .mcs import MCS_TABLE, Mcs, select_mcs

__all__ = ["RateAdapter"]


class RateAdapter:
    """Hysteretic MCS selection over a stream of SNR readings."""

    def __init__(self, up_margin_db: float = 1.0):
        if up_margin_db < 0:
            raise ValueError("hysteresis margin cannot be negative")
        self._up_margin_db = up_margin_db
        self._current: Optional[Mcs] = None

    @property
    def current(self) -> Optional[Mcs]:
        """The MCS in use, or ``None`` before the first update."""
        return self._current

    def update(self, sweep_snr_db: float) -> Optional[Mcs]:
        """Feed one SNR reading; returns the (possibly new) MCS."""
        target = select_mcs(sweep_snr_db)
        if self._current is None:
            self._current = target
            return self._current
        if target is None:
            self._current = None
            return None
        if target.index > self._current.index:
            # Climb to the highest MCS whose threshold the SNR clears
            # by the hysteresis margin (at least hold the current one).
            climbed = self._current
            for mcs in MCS_TABLE:
                if (
                    mcs.index > climbed.index
                    and sweep_snr_db >= mcs.min_sweep_snr_db + self._up_margin_db
                ):
                    climbed = mcs
            self._current = climbed
        else:
            self._current = target
        return self._current
