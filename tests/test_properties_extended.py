"""Property-based tests (hypothesis) on the extension subsystems."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.blockage import HumanBlocker
from repro.core.oob import OutOfBandPrior
from repro.geometry import AngularGrid
from repro.link import MCS_TABLE, PacketErrorModel
from repro.link.throughput import ThroughputModel
from repro.mac.timing import mutual_training_time_us, training_speedup
from repro.net import AirtimeLedger, TrainingPolicy

snr = st.floats(min_value=-30.0, max_value=40.0)


class TestPacketErrorProperties:
    @settings(max_examples=60)
    @given(snr, st.integers(min_value=0, max_value=11))
    def test_per_in_unit_interval(self, snr_db, mcs_index):
        model = PacketErrorModel()
        per = model.packet_error_rate(MCS_TABLE[mcs_index], snr_db)
        assert 0.0 <= per <= 1.0

    @settings(max_examples=60)
    @given(snr, st.integers(min_value=0, max_value=11))
    def test_effective_rate_bounded_by_phy(self, snr_db, mcs_index):
        model = PacketErrorModel()
        mcs = MCS_TABLE[mcs_index]
        rate = model.effective_rate_mbps(mcs, snr_db)
        assert 0.0 <= rate <= mcs.phy_rate_mbps + 1e-9

    @settings(max_examples=40)
    @given(snr)
    def test_soft_goodput_nonnegative_and_capped(self, snr_db):
        model = PacketErrorModel()
        goodput = model.goodput_gbps(snr_db)
        top = MCS_TABLE[-1].phy_rate_mbps * 0.65 / 1000.0
        assert 0.0 <= goodput <= top + 1e-9

    @settings(max_examples=40)
    @given(st.integers(min_value=0, max_value=11), st.floats(min_value=0.0, max_value=15.0))
    def test_margin_never_raises_per(self, mcs_index, margin):
        model = PacketErrorModel()
        mcs = MCS_TABLE[mcs_index]
        at = model.packet_error_rate(mcs, mcs.min_sweep_snr_db)
        with_margin = model.packet_error_rate(mcs, mcs.min_sweep_snr_db + margin)
        assert with_margin <= at + 1e-12


class TestTimingProperties:
    @settings(max_examples=40)
    @given(st.integers(min_value=1, max_value=63))
    def test_training_time_positive_and_linear(self, n_probes):
        time_us = mutual_training_time_us(n_probes)
        assert time_us > 0
        assert abs(mutual_training_time_us(n_probes + 1) - time_us - 36.0) < 1e-9

    @settings(max_examples=40)
    @given(st.integers(min_value=1, max_value=34))
    def test_speedup_at_most_full_over_minimum(self, n_probes):
        speedup = training_speedup(n_probes)
        assert speedup >= 1.0 or n_probes > 34
        assert speedup <= training_speedup(1)


class TestAirtimeProperties:
    @settings(max_examples=40)
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=34),
        st.floats(min_value=10_000.0, max_value=1_000_000.0),
    )
    def test_data_fraction_bounded(self, n_pairs, n_probes, interval_us):
        ledger = AirtimeLedger()
        policy = TrainingPolicy("p", n_probes, interval_us)
        for pair in range(n_pairs):
            ledger.add_training(f"pair{pair}", policy)
        assert 0.0 <= ledger.data_fraction() <= 1.0
        assert ledger.exclusive_us >= 0.0

    @settings(max_examples=40)
    @given(st.integers(min_value=1, max_value=34))
    def test_fewer_probes_leave_more_airtime(self, n_probes):
        full = AirtimeLedger()
        reduced = AirtimeLedger()
        full.add_training("pair", TrainingPolicy("ssw", 34, 50_000.0))
        reduced.add_training("pair", TrainingPolicy("css", n_probes, 50_000.0))
        assert reduced.data_fraction() >= full.data_fraction()


class TestBlockerProperties:
    @settings(max_examples=60)
    @given(
        st.floats(min_value=-3.0, max_value=3.0),
        st.floats(min_value=0.05, max_value=0.5),
        st.floats(min_value=0.0, max_value=40.0),
    )
    def test_loss_bounded_by_attenuation(self, offset, radius, attenuation):
        blocker = HumanBlocker(
            position_m=np.array([1.5, offset, 0.0]),
            radius_m=radius,
            attenuation_db=attenuation,
        )
        loss = blocker.loss_on_segment_db(
            np.zeros(3), np.array([3.0, 0.0, 0.0])
        )
        assert 0.0 <= loss <= attenuation + 1e-9

    @settings(max_examples=40)
    @given(st.floats(min_value=1.01, max_value=5.0))
    def test_far_blockers_harmless(self, lateral_radii):
        blocker = HumanBlocker(position_m=np.array([1.5, 0.0, 0.0]), radius_m=0.25)
        offset = 2.0 * 0.25 * lateral_radii  # beyond two radii
        loss = blocker.loss_on_segment_db(
            np.array([0.0, offset, 0.0]), np.array([3.0, offset, 0.0])
        )
        assert loss == 0.0


class TestPriorProperties:
    @settings(max_examples=40)
    @given(
        st.floats(min_value=-180.0, max_value=180.0),
        st.floats(min_value=1.0, max_value=60.0),
    )
    def test_weights_in_unit_interval_and_peak_at_prior(self, azimuth, sigma):
        grid = AngularGrid(np.arange(-90.0, 91.0, 2.0), np.array([0.0]))
        prior = OutOfBandPrior(azimuth_deg=azimuth, sigma_deg=sigma)
        weights = prior.weights_on(grid)
        assert (weights >= 0.0).all() and (weights <= 1.0 + 1e-12).all()

    @settings(max_examples=40)
    @given(st.floats(min_value=-80.0, max_value=80.0))
    def test_weight_maximal_nearest_prior_direction(self, azimuth):
        grid = AngularGrid(np.arange(-90.0, 91.0, 2.0), np.array([0.0]))
        prior = OutOfBandPrior(azimuth_deg=azimuth, sigma_deg=10.0)
        weights = prior.weights_on(grid)
        azimuths, _ = grid.flat_angles()
        best = azimuths[int(np.argmax(weights))]
        assert abs(best - azimuth) <= 1.0 + 1e-9


class TestThroughputProperties:
    @settings(max_examples=60)
    @given(snr, st.integers(min_value=1, max_value=34))
    def test_goodput_with_training_never_exceeds_raw(self, snr_db, n_probes):
        model = ThroughputModel()
        with_training = model.goodput_with_training_gbps(snr_db, n_probes)
        raw = model.goodput_gbps(snr_db)
        assert 0.0 <= with_training <= raw + 1e-12
