"""Estimation-quality telemetry (DESIGN.md §15).

The paper's claims are quality-vs-budget curves; the mechanical trace
(spans, counters) cannot explain *why* a policy or a designer wins.
This module records the physical-layer exemplars that predict recovery
quality, at the three seams where they are cheap to read:

* **Estimator** — the Eq. 3/5 correlation *peak-to-runner-up ratio*: a
  sharp peak means the probe subset discriminated the path direction;
  a ratio near 1 means the sensing matrix confused neighboring grid
  points (the diagnostic arXiv:2308.13268 uses to predict alignment
  error).
* **Selector** — the Eq. 4 *selection margin*: the dB gap between the
  chosen sector's gain at the estimated direction and the runner-up
  candidate.  A thin margin means the codebook was dense there and a
  small estimation error flips the sector.
* **Designer** — the *mutual coherence* and *condition number* of the
  designed sensing matrix (normalized pattern rows), the structured
  sensing-matrix quality measures of arXiv:2205.11154.

Exemplars aggregate into labeled histograms
(``policy`` × ``environment`` × ``m``) through the ordinary metrics
registry, so they ride the existing worker drain/absorb channel — the
jobs=4 merge is elementwise bucket addition over fixed edges, making
the enabled aggregate equal at any job count.

Telemetry is **off unless a quality context is active**: every seam
does one ContextVar read and returns, so untelemetered runs stay
bit-identical and inside the obs overhead budget.  Values derive only
from arrays the seams already computed — the RNG is never touched —
so enabling telemetry never changes results either.
"""

from __future__ import annotations

from contextvars import ContextVar
from typing import Any, Dict, Mapping, Optional

import numpy as np

from . import metrics as _metrics  # noqa: F401  (bucket families live there)

__all__ = [
    "QualityContext",
    "activate_quality",
    "deactivate_quality",
    "quality_context",
    "record_peak_ratio",
    "record_selection_margin",
    "record_design_diagnostics",
    "subset_diagnostics",
]

#: Active quality context (one ContextVar read on the hot path, the
#: same discipline as ``obs._SESSION``).
_QUALITY: ContextVar[Optional["QualityContext"]] = ContextVar(
    "repro_quality", default=None
)


class QualityContext:
    """Labels under which the current block's exemplars are recorded.

    Constructed by the runner (which knows the policy label and the
    spec's environment) and shipped to pool workers inside
    ``obs_meta`` so worker-side exemplars carry the same labels.
    """

    __slots__ = ("policy", "environment")

    def __init__(self, policy: str = "?", environment: str = "?"):
        self.policy = str(policy)
        self.environment = str(environment)

    def labels(self, **extra: Any) -> Dict[str, str]:
        out = {"policy": self.policy, "environment": self.environment}
        for key, value in extra.items():
            out[key] = str(value)
        return out

    def to_meta(self) -> Dict[str, str]:
        """The picklable form carried in worker ``obs_meta``."""
        return {"policy": self.policy, "environment": self.environment}

    @classmethod
    def from_meta(cls, meta: Mapping[str, Any]) -> "QualityContext":
        return cls(
            policy=meta.get("policy", "?"), environment=meta.get("environment", "?")
        )


def activate_quality(context: Optional[QualityContext]):
    """Make ``context`` current; returns a token for deactivation."""
    return _QUALITY.set(context)


def deactivate_quality(token) -> None:
    _QUALITY.reset(token)


def quality_context() -> Optional[QualityContext]:
    """The active context, or ``None`` (the single hot-path check)."""
    return _QUALITY.get()


def _observe(name: str, value: float, labels: Dict[str, str]) -> None:
    from . import observe as _obs_observe

    _obs_observe(name, float(value), **labels)


# ----------------------------------------------------------------------
# Seam recorders.  Each does nothing unless a context is active, and
# reads only finished arrays — never the RNG, never selector state.
# ----------------------------------------------------------------------


def record_peak_ratio(surface: np.ndarray, best_index: int, m: int) -> None:
    """Correlation peak-to-runner-up ratio from one trial's surface.

    ``surface`` is the fused correlation over the search grid;
    ``best_index`` its finite argmax.  Skipped when no finite
    runner-up exists (single-point grids, all-NaN rows) or the
    runner-up is non-positive (a ratio would be meaningless).
    """
    context = _QUALITY.get()
    if context is None:
        return
    values = np.asarray(surface, dtype=float)
    if values.size < 2 or not 0 <= best_index < values.size:
        return
    peak = float(values[best_index])
    rest = np.delete(values, best_index)
    finite = rest[np.isfinite(rest)]
    if not finite.size:
        return
    runner_up = float(finite.max())
    if not np.isfinite(peak) or runner_up <= 0.0:
        return
    _observe(
        "quality_peak_ratio", peak / runner_up, context.labels(m=int(m))
    )


def record_selection_margin(candidate_gains: np.ndarray, m: int) -> None:
    """Eq. 4 selection margin: top-1 minus top-2 candidate gain (dB).

    ``candidate_gains`` is the column of the candidate matrix at the
    estimated direction — already gathered by every selection path.
    """
    context = _QUALITY.get()
    if context is None:
        return
    gains = np.asarray(candidate_gains, dtype=float)
    finite = gains[np.isfinite(gains)]
    if finite.size < 2:
        return
    top2 = np.partition(finite, finite.size - 2)[-2:]
    _observe(
        "quality_selection_margin_db",
        float(top2[1] - top2[0]),
        context.labels(m=int(m)),
    )


def subset_diagnostics(rows: np.ndarray) -> Dict[str, float]:
    """Sensing-matrix quality of one designed subset.

    ``rows`` are the subset's unit-normalized linear-power pattern
    rows (M × grid).  Mutual coherence is the largest off-diagonal
    |inner product|; the condition number is the 2-norm ratio of the
    subset matrix's singular values (∞ when rank-deficient).
    """
    matrix = np.asarray(rows, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] < 2:
        return {"coherence": 0.0, "condition": 1.0}
    gram = np.abs(matrix @ matrix.T)
    np.fill_diagonal(gram, 0.0)
    coherence = float(gram.max())
    singular = np.linalg.svd(matrix, compute_uv=False)
    smallest = float(singular[-1])
    condition = float(singular[0] / smallest) if smallest > 0.0 else float("inf")
    return {"coherence": coherence, "condition": condition}


def record_design_diagnostics(
    designer: str, diagnostics: Mapping[str, float], m: int
) -> None:
    """Record one designer's subset diagnostics under the active labels."""
    context = _QUALITY.get()
    if context is None:
        return
    labels = context.labels(designer=designer, m=int(m))
    _observe("quality_design_coherence", diagnostics["coherence"], labels)
    condition = diagnostics["condition"]
    if np.isfinite(condition):
        _observe("quality_design_condition", condition, labels)
