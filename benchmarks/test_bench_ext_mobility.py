"""Bench (extension): tracking a walking user (§7 mobility argument).

A client walks a 5 m arc around the AP at 3°/s; the tracker re-trains
once per second.  Expected shape: CSS-14 keeps the link within ~1-2 dB
of the oracle over the whole walk while spending 2.3× less training
airtime than a full sweep per interval; the §7 adaptive controller
tracks almost as well with even less airtime while the user pauses.
"""

import numpy as np

from repro.channel import ArcTrajectory, MobileLink, conference_room
from repro.core import (
    AdaptiveProbeController,
    CompressiveSectorSelector,
    ProbeMeasurement,
    RandomProbeStrategy,
    SectorSweepSelector,
)
from repro.experiments.common import build_testbed
from repro.mac.timing import mutual_training_time_us


def _run_mobility():
    testbed = build_testbed()
    rng = np.random.default_rng(33)
    trajectory = ArcTrajectory(
        center_m=np.zeros(3), radius_m=5.0, angular_speed_deg_s=3.0, start_angle_deg=-45.0
    )
    link = MobileLink(
        conference_room(6.0),
        trajectory,
        testbed.dut_antenna,
        testbed.dut_codebook,
        testbed.ref_antenna,
        testbed.ref_codebook,
        budget=testbed.budget,
    )
    tx_ids = testbed.tx_sector_ids
    strategy = RandomProbeStrategy()
    css = CompressiveSectorSelector(testbed.pattern_table)
    ssw = SectorSweepSelector()
    adaptive = AdaptiveProbeController(min_probes=10, max_probes=24)
    adaptive_css = CompressiveSectorSelector(testbed.pattern_table)

    losses = {"SSW": [], "CSS-14": [], "CSS adaptive": []}
    airtime = {"SSW": 0.0, "CSS-14": 0.0, "CSS adaptive": 0.0}

    def observe(truth, probe_ids):
        measurements = []
        for sector_id in probe_ids:
            observation = testbed.measurement_model.observe(
                truth[tx_ids.index(sector_id)], testbed.budget.noise_floor_dbm, rng
            )
            if observation is not None:
                measurements.append(
                    ProbeMeasurement(sector_id, observation.snr_db, observation.rssi_dbm)
                )
        return measurements

    for second in range(30):
        truth = link.true_snr_at(float(second))
        optimal = truth.max()

        chosen = ssw.select(observe(truth, tx_ids)).sector_id
        losses["SSW"].append(optimal - truth[tx_ids.index(chosen)])
        airtime["SSW"] += mutual_training_time_us(34)

        probe_ids = strategy.choose(14, tx_ids, rng)
        chosen = css.select(observe(truth, probe_ids)).sector_id
        losses["CSS-14"].append(optimal - truth[tx_ids.index(chosen)])
        airtime["CSS-14"] += mutual_training_time_us(14)

        budget = min(adaptive.n_probes, len(tx_ids))
        probe_ids = strategy.choose(budget, tx_ids, rng)
        selection = adaptive_css.select(observe(truth, probe_ids))
        adaptive.update(selection.estimate)
        losses["CSS adaptive"].append(
            optimal - truth[tx_ids.index(selection.sector_id)]
        )
        airtime["CSS adaptive"] += mutual_training_time_us(budget)

    rows = ["mobility tracking (extension): 5 m arc at 3 deg/s, 30 s"]
    rows.append("strategy     | mean loss [dB] | training airtime [ms]")
    summary = {}
    for name in losses:
        mean_loss = float(np.mean(losses[name]))
        total_ms = airtime[name] / 1000.0
        summary[name] = (mean_loss, total_ms)
        rows.append(f"{name:12s} | {mean_loss:14.2f} | {total_ms:20.2f}")
    return rows, summary


def test_mobility_tracking(benchmark, report_rows):
    rows, summary = benchmark.pedantic(_run_mobility, rounds=1, iterations=1)
    report_rows(rows)

    ssw_loss, ssw_air = summary["SSW"]
    css_loss, css_air = summary["CSS-14"]
    adaptive_loss, adaptive_air = summary["CSS adaptive"]

    # Everyone keeps the moving link within a few dB of the oracle.
    assert ssw_loss < 2.0
    assert css_loss < 3.0
    assert adaptive_loss < 3.0

    # CSS spends 2.3x less airtime than the sweep; the adaptive
    # controller lands between the fixed budgets.
    expected_ratio = mutual_training_time_us(34) / mutual_training_time_us(14)
    assert abs(ssw_air / css_air - expected_ratio) < 1e-6
    assert adaptive_air < ssw_air
