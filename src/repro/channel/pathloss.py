"""Large-scale path loss at 60 GHz.

The mm-wave band combines a high free-space path loss with oxygen
absorption peaking around 60 GHz (~15 dB/km).  Indoors the absorption
term is small but we keep it for fidelity and so that the model remains
valid for longer-range scenarios.
"""

from __future__ import annotations

import numpy as np

from ..phased_array.elements import DEFAULT_CARRIER_HZ, SPEED_OF_LIGHT_M_S

__all__ = [
    "OXYGEN_ABSORPTION_DB_PER_KM",
    "free_space_path_loss_db",
    "oxygen_absorption_db",
    "path_loss_db",
]

#: Sea-level oxygen absorption near the 60 GHz resonance.
OXYGEN_ABSORPTION_DB_PER_KM = 15.0


def free_space_path_loss_db(distance_m: float, carrier_hz: float = DEFAULT_CARRIER_HZ) -> float:
    """Friis free-space path loss between isotropic antennas (dB)."""
    if distance_m <= 0:
        raise ValueError("distance must be positive")
    if carrier_hz <= 0:
        raise ValueError("carrier frequency must be positive")
    wavelength = SPEED_OF_LIGHT_M_S / carrier_hz
    return float(20.0 * np.log10(4.0 * np.pi * distance_m / wavelength))


def oxygen_absorption_db(distance_m: float) -> float:
    """Oxygen absorption loss over a path of ``distance_m`` (dB)."""
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    return OXYGEN_ABSORPTION_DB_PER_KM * distance_m / 1000.0


def path_loss_db(distance_m: float, carrier_hz: float = DEFAULT_CARRIER_HZ) -> float:
    """Total large-scale loss: free space plus oxygen absorption."""
    return free_space_path_loss_db(distance_m, carrier_hz) + oxygen_absorption_db(distance_m)
