"""repro — compressive mm-wave sector selection for IEEE 802.11ad.

A from-scratch reproduction of *"Compressive Millimeter-Wave Sector
Selection in Off-the-Shelf IEEE 802.11ad Devices"* (Steinmetzer,
Wegemer, Schulz, Widmer, Hollick — CoNEXT 2017), including every
substrate the paper's system runs on:

* :mod:`repro.phased_array` — a Talon-AD7200-like 32-element array
  with a synthetic 35-sector codebook and low-cost-hardware flaws;
* :mod:`repro.channel` — 60 GHz rays, reflectors, environments, and
  the firmware's quirky SNR/RSSI observation model;
* :mod:`repro.firmware` — a simulated QCA9500 (memory map, Nexmon-like
  patch framework, WMI, sweep-report ring buffer);
* :mod:`repro.mac` — DMG training frames, Table-1 schedules, timing,
  and the sector-level-sweep protocol engine;
* :mod:`repro.measurement` — the anechoic-chamber pattern campaign;
* :mod:`repro.core` — the compressive sector selection algorithm
  (Eqs. 1–5) with probing strategies and adaptive tracking;
* :mod:`repro.baselines` — exhaustive sweep, oracle, hierarchical
  search, pseudo-random beams;
* :mod:`repro.link` — MCS ladder, rate adaptation, TCP goodput;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    import numpy as np
    from repro.phased_array import PhasedArray, talon_codebook
    from repro.measurement import PatternMeasurementCampaign, measure_3d_patterns
    from repro.core import CompressiveSectorSelector

    rng = np.random.default_rng(0)
    antenna = PhasedArray.talon()
    codebook = talon_codebook(antenna)
    campaign = PatternMeasurementCampaign(antenna, codebook)
    patterns = measure_3d_patterns(campaign, rng, azimuth_step_deg=3.6)
    selector = CompressiveSectorSelector(patterns)
"""

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "channel",
    "core",
    "experiments",
    "firmware",
    "geometry",
    "link",
    "mac",
    "measurement",
    "phased_array",
]
