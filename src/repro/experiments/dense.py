"""Extension experiment: dense deployments and tracking frequency (§7).

"Each sector sweep performed by a pair of nodes pollutes the whole
mm-wave channel in all directions.  This reduces the benefit of using
mm-wave hardware to communicate with many stations in parallel over
directional links.  The shorter the sweeping time, the more often a
sweep can be performed without degrading the throughput too much."

The experiment places ``n`` pairs in the conference room, lets every
pair re-train at a given rate, charges training airtime exclusively on
the shared medium (data enjoys full spatial reuse), and reports the
aggregate goodput for the exhaustive sweep vs. compressive selection —
plus the maximum per-pair tracking rate each can sustain at a fixed
training-airtime budget.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..channel.environment import conference_room
from ..link.throughput import ThroughputModel
from ..mac.timing import N_FULL_SWEEP_SECTORS, mutual_training_time_us
from ..net.airtime import AirtimeLedger, TrainingPolicy
from ..runtime.registry import register_scenario
from ..runtime.runner import ScenarioRunner
from ..runtime.spec import ScenarioSpec
from .common import build_testbed, record_directions

__all__ = [
    "DenseConfig",
    "DenseResult",
    "run_dense_deployment",
    "dense_spec",
    "DenseInterferenceResult",
    "run_dense_interference",
    "dense_interference_spec",
]


@dataclass(frozen=True)
class DenseConfig:
    seed: int = 17
    pair_counts: Sequence[int] = (1, 2, 5, 10, 20, 40)
    css_probes: int = 14
    trainings_per_second: float = 10.0  # mobile room: track at 10 Hz
    airtime_budget: float = 0.10  # training may use 10% of the channel


@dataclass
class DenseResult:
    pair_counts: List[int]
    ssw_aggregate_gbps: List[float]
    css_aggregate_gbps: List[float]
    ssw_max_rate_hz: Dict[int, float]
    css_max_rate_hz: Dict[int, float]
    css_probes: int

    def format_rows(self) -> List[str]:
        rows = [
            "dense deployment (extension): aggregate goodput at "
            "10 Hz tracking, training is channel-exclusive",
            "pairs | SSW [Gbps] | CSS [Gbps]",
        ]
        for n_pairs, ssw, css in zip(
            self.pair_counts, self.ssw_aggregate_gbps, self.css_aggregate_gbps
        ):
            rows.append(f"{n_pairs:5d} | {ssw:10.2f} | {css:10.2f}")
        rows.append("max tracking rate in a 10% training budget:")
        for n_pairs in self.ssw_max_rate_hz:
            rows.append(
                f"{n_pairs:5d} pairs: SSW {self.ssw_max_rate_hz[n_pairs]:6.1f} Hz, "
                f"CSS {self.css_max_rate_hz[n_pairs]:6.1f} Hz"
            )
        return rows


def dense_spec(config: DenseConfig = DenseConfig()) -> ScenarioSpec:
    """The declarative form of a dense-deployment run."""
    params = {key: value for key, value in asdict(config).items() if key != "seed"}
    params["pair_counts"] = [int(count) for count in params["pair_counts"]]
    return ScenarioSpec(scenario="dense", seed=config.seed, params=params)


def _config_from_spec(spec: ScenarioSpec) -> DenseConfig:
    params = dict(spec.params)
    params["pair_counts"] = tuple(params["pair_counts"])
    return DenseConfig(seed=spec.seed, **params)


@register_scenario("dense", default_spec=dense_spec)
def _run_dense_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> DenseResult:
    """Dense deployment (§7): aggregate goodput with channel-exclusive training."""
    config = _config_from_spec(spec)
    testbed = spec.testbed.build()
    rng = np.random.default_rng(config.seed)
    model = ThroughputModel()
    interval_us = 1e6 / config.trainings_per_second

    # Every pair gets a random path direction in the room; its link
    # quality is the best sector's sweep SNR there.
    max_pairs = max(config.pair_counts)
    directions = rng.uniform(-60.0, 60.0, size=max_pairs)
    recordings = record_directions(
        testbed, conference_room(6.0), np.sort(directions), [0.0], 1, rng
    )
    link_snrs = [recording.optimal_snr_db() for recording in recordings]

    ssw_policy = TrainingPolicy("ssw", N_FULL_SWEEP_SECTORS, interval_us)
    css_policy = TrainingPolicy("css", config.css_probes, interval_us)

    ssw_aggregate: List[float] = []
    css_aggregate: List[float] = []
    for n_pairs in config.pair_counts:
        snrs = link_snrs[:n_pairs]
        for policy, sink in ((ssw_policy, ssw_aggregate), (css_policy, css_aggregate)):
            ledger = AirtimeLedger()
            for pair in range(n_pairs):
                ledger.add_training(f"pair{pair}", policy)
            data_fraction = ledger.data_fraction()
            sink.append(
                float(sum(model.goodput_gbps(snr) for snr in snrs) * data_fraction)
            )

    # Max sustainable per-pair tracking rate at the airtime budget.
    ssw_rates: Dict[int, float] = {}
    css_rates: Dict[int, float] = {}
    for n_pairs in config.pair_counts:
        budget_us = config.airtime_budget * 1e6
        ssw_rates[n_pairs] = budget_us / (
            mutual_training_time_us(N_FULL_SWEEP_SECTORS) * n_pairs
        )
        css_rates[n_pairs] = budget_us / (
            mutual_training_time_us(config.css_probes) * n_pairs
        )

    return DenseResult(
        pair_counts=list(config.pair_counts),
        ssw_aggregate_gbps=ssw_aggregate,
        css_aggregate_gbps=css_aggregate,
        ssw_max_rate_hz=ssw_rates,
        css_max_rate_hz=css_rates,
        css_probes=config.css_probes,
    )


def run_dense_deployment(config: DenseConfig = DenseConfig()) -> DenseResult:
    """Scale the number of pairs and account the training airtime."""
    return ScenarioRunner().run(dense_spec(config)).result


@dataclass
class DenseInterferenceResult:
    """Spatial-reuse limits: SINR-aware aggregate goodput."""

    pair_counts: List[int]
    ideal_gbps: List[float]
    sinr_aware_gbps: List[float]
    mean_reuse_penalty_db: List[float]

    def format_rows(self) -> List[str]:
        rows = [
            "dense deployment with interference (extension): "
            "spatial reuse is not free",
            "pairs | ideal [Gbps] | SINR-aware [Gbps] | mean reuse penalty [dB]",
        ]
        for n_pairs, ideal, aware, penalty in zip(
            self.pair_counts,
            self.ideal_gbps,
            self.sinr_aware_gbps,
            self.mean_reuse_penalty_db,
        ):
            rows.append(
                f"{n_pairs:5d} | {ideal:12.2f} | {aware:17.2f} | {penalty:22.2f}"
            )
        return rows


def dense_interference_spec(
    pair_counts: Sequence[int] = (1, 2, 4, 8),
    room_width_m: float = 8.0,
    seed: int = 18,
) -> ScenarioSpec:
    """The declarative form of a dense-interference run."""
    return ScenarioSpec(
        scenario="dense-interference",
        seed=seed,
        params={
            "pair_counts": [int(count) for count in pair_counts],
            "room_width_m": float(room_width_m),
        },
    )


@register_scenario("dense-interference", default_spec=dense_interference_spec)
def _run_dense_interference_scenario(
    spec: ScenarioSpec, runner: ScenarioRunner
) -> DenseInterferenceResult:
    """Concurrent directional links in one room, with real interference.

    Pairs are parallel 6 m links spread across the room's width; every
    transmitter uses the sector its trained selection would pick
    (boresight here — the pairs face straight across).  The
    interference graph turns pattern leakage into per-link SINR, which
    caps how much aggregate goodput the room can actually host.
    """
    from ..geometry.rotation import Orientation
    from ..net.interference import DirectionalLink, InterferenceGraph

    pair_counts = tuple(spec.params["pair_counts"])
    room_width_m = float(spec.params["room_width_m"])
    testbed = spec.testbed.build()
    model = ThroughputModel()
    environment = conference_room(6.0)
    tx_weights = testbed.dut_codebook[63].weights
    rx_weights = testbed.dut_codebook.rx_sector.weights

    ideal: List[float] = []
    aware: List[float] = []
    penalties: List[float] = []
    for n_pairs in pair_counts:
        offsets = np.linspace(-room_width_m / 2.0, room_width_m / 2.0, n_pairs + 2)[1:-1]
        links = [
            DirectionalLink(
                name=f"pair{index}",
                tx_position_m=np.array([0.0, float(offset), 0.0]),
                rx_position_m=np.array([6.0, float(offset), 0.0]),
                tx_orientation=Orientation(),
                rx_orientation=Orientation(yaw_deg=180.0),
                tx_weights=tx_weights,
                rx_weights=rx_weights,
            )
            for index, offset in enumerate(offsets)
        ]
        graph = InterferenceGraph(environment, testbed.dut_antenna, links)
        snrs = [
            graph.signal_power_dbm(link) - graph.budget.noise_floor_dbm
            for link in links
        ]
        sinrs = [graph.sinr_db(link) for link in links]
        ideal.append(float(sum(model.goodput_gbps(snr) for snr in snrs)))
        aware.append(float(sum(model.goodput_gbps(sinr) for sinr in sinrs)))
        penalties.append(float(np.mean([s - si for s, si in zip(snrs, sinrs)])))

    return DenseInterferenceResult(
        pair_counts=list(pair_counts),
        ideal_gbps=ideal,
        sinr_aware_gbps=aware,
        mean_reuse_penalty_db=penalties,
    )


def run_dense_interference(
    pair_counts: Sequence[int] = (1, 2, 4, 8),
    room_width_m: float = 8.0,
    seed: int = 18,
) -> DenseInterferenceResult:
    """Concurrent directional links in one room, with real interference."""
    return (
        ScenarioRunner()
        .run(dense_interference_spec(pair_counts, room_width_m, seed))
        .result
    )
