"""Extension experiment: pattern aging (hardware drift over time).

The chamber campaign happens once; the device then lives for years.
Temperature, mechanical stress and component aging slowly shift the
per-element phases, so the table describes a device that no longer
quite exists.  This experiment ages the hardware by a growing phase
drift and measures how gracefully CSS degrades with the stale table —
and when a re-calibration pays off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

import numpy as np

from ..channel.environment import conference_room
from ..core.compressive import CompressiveSectorSelector
from ..phased_array.array import PhasedArray
from ..phased_array.impairments import HardwareImpairments
from .common import build_testbed, random_probe_columns, record_directions

__all__ = ["DriftConfig", "DriftResult", "run_pattern_drift"]


@dataclass(frozen=True)
class DriftConfig:
    seed: int = 37
    n_probes: int = 14
    drift_levels_rad: Sequence[float] = (0.0, 0.1, 0.2, 0.4, 0.8)
    azimuth_step_deg: float = 12.0
    n_sweeps: int = 5


@dataclass
class DriftResult:
    drift_levels_rad: List[float]
    snr_loss_db: List[float]
    fallback_rate: List[float]

    def format_rows(self) -> List[str]:
        rows = [
            "pattern aging (extension): CSS with a stale chamber table",
            "phase drift [rad] | SNR loss [dB] | fallback rate",
        ]
        for level, loss, fallback in zip(
            self.drift_levels_rad, self.snr_loss_db, self.fallback_rate
        ):
            rows.append(f"{level:17.2f} | {loss:13.2f} | {fallback:13.2f}")
        return rows


def _aged_antenna(
    antenna: PhasedArray, drift_rad: float, rng: np.random.Generator
) -> PhasedArray:
    """The same device after its element phases drifted."""
    impairments = antenna.impairments
    aged = HardwareImpairments(
        phase_error_rad=impairments.phase_error_rad
        + rng.normal(0.0, drift_rad, size=impairments.n_elements),
        gain_error_db=impairments.gain_error_db,
        element_failed=impairments.element_failed,
        blockage=impairments.blockage,
    )
    return PhasedArray(
        layout=antenna.layout,
        impairments=aged,
        element_exponent=antenna.element_exponent,
        element_peak_gain_db=antenna.element_peak_gain_db,
    )


def run_pattern_drift(config: DriftConfig = DriftConfig()) -> DriftResult:
    """Age the hardware and keep selecting with the original table."""
    testbed = build_testbed()
    rng = np.random.default_rng(config.seed)
    azimuths = np.arange(-60.0, 60.0 + 1e-9, config.azimuth_step_deg)

    losses: List[float] = []
    fallbacks: List[float] = []
    tx_ids = testbed.tx_sector_ids
    id_row = np.asarray(tx_ids, dtype=np.intp)
    column_of = {sector_id: column for column, sector_id in enumerate(tx_ids)}
    # One hoisted selector; `reset()` per drift level reproduces the
    # fresh-selector state the scalar loop built for each level.
    selector = CompressiveSectorSelector(testbed.pattern_table)
    for drift in config.drift_levels_rad:
        aged = _aged_antenna(testbed.dut_antenna, float(drift), rng)
        aged_testbed = replace(testbed, dut_antenna=aged)
        recordings = record_directions(
            aged_testbed, conference_room(6.0), azimuths, [0.0], config.n_sweeps, rng
        )
        selector.reset()
        trial_ids: List[np.ndarray] = []
        trial_snr: List[np.ndarray] = []
        trial_rssi: List[np.ndarray] = []
        trial_mask: List[np.ndarray] = []
        optima: List[float] = []
        truth_rows: List[np.ndarray] = []
        for recording in recordings:
            present, snr, rssi = recording.packed_sweeps(tx_ids)
            optimal = recording.optimal_snr_db()
            for sweep_index in range(len(recording.sweeps)):
                columns = random_probe_columns(len(tx_ids), config.n_probes, rng)
                trial_ids.append(id_row[columns])
                trial_snr.append(snr[sweep_index, columns])
                trial_rssi.append(rssi[sweep_index, columns])
                trial_mask.append(present[sweep_index, columns])
                optima.append(optimal)
                truth_rows.append(recording.true_snr_db)
        results = selector.select_batch(
            np.stack(trial_ids),
            snr_db=np.stack(trial_snr),
            rssi_dbm=np.stack(trial_rssi),
            mask=np.stack(trial_mask),
        )
        level_losses: List[float] = []
        fallback_count = 0
        for result, optimal, truth in zip(results, optima, truth_rows):
            if result.fallback:
                fallback_count += 1
            level_losses.append(optimal - truth[column_of[result.sector_id]])
        losses.append(float(np.mean(level_losses)))
        fallbacks.append(fallback_count / max(len(results), 1))

    return DriftResult(
        drift_levels_rad=list(config.drift_levels_rad),
        snr_loss_db=losses,
        fallback_rate=fallbacks,
    )
