"""Multi-path extraction from the compressive correlation surface.

The correlation map W(φ, θ) peaks at the dominant path, but in a
reflective room secondary peaks mark alternative paths (a whiteboard
bounce, a wall).  Extracting the top-k peaks gives a backup steering
direction *for free* from the same probes — the extension the paper's
§8 relates to BeamSpy-style proactive path switching, built here on
top of the compressive estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..geometry.angles import angular_distance
from ..geometry.grid import AngularGrid
from ..measurement.patterns import PatternTable
from .estimator import AngleEstimator
from .measurements import ProbeMeasurement

__all__ = ["PathEstimate", "extract_paths", "MultipathSelector"]


@dataclass(frozen=True)
class PathEstimate:
    """One extracted propagation path."""

    azimuth_deg: float
    elevation_deg: float
    correlation: float
    rank: int

    def separation_from(self, other: "PathEstimate") -> float:
        return angular_distance(
            self.azimuth_deg, self.elevation_deg, other.azimuth_deg, other.elevation_deg
        )


def extract_paths(
    surface: np.ndarray,
    grid: AngularGrid,
    n_paths: int = 2,
    min_separation_deg: float = 15.0,
    min_relative_correlation: float = 0.5,
) -> List[PathEstimate]:
    """Greedy peak extraction with an angular exclusion zone.

    Repeatedly takes the strongest remaining grid point, then masks
    everything within ``min_separation_deg`` of it.  Peaks weaker than
    ``min_relative_correlation`` times the main peak are discarded —
    they are correlation noise, not paths.

    Args:
        surface: flattened correlation map (``grid.n_points`` values).
        grid: the search grid the surface lives on.

    Returns:
        At most ``n_paths`` paths, strongest first.
    """
    surface = np.asarray(surface, dtype=float)
    if surface.shape != (grid.n_points,):
        raise ValueError("surface must be a flattened map over the grid")
    if n_paths < 1:
        raise ValueError("need at least one path")

    azimuths, elevations = grid.flat_angles()
    remaining = surface.copy()
    paths: List[PathEstimate] = []
    main_peak = float(surface.max())
    for rank in range(n_paths):
        index = int(np.argmax(remaining))
        value = float(remaining[index])
        if value <= 0.0 or (paths and value < min_relative_correlation * main_peak):
            break
        azimuth = float(azimuths[index])
        elevation = float(elevations[index])
        paths.append(
            PathEstimate(
                azimuth_deg=azimuth,
                elevation_deg=elevation,
                correlation=value,
                rank=rank,
            )
        )
        separation = angular_distance(azimuth, elevation, azimuths, elevations)
        remaining[separation < min_separation_deg] = -np.inf
    return paths


class MultipathSelector:
    """Compressive selection with a standby sector on the backup path.

    Each sweep yields a primary sector (Eq. 4 at the strongest path)
    *and* a standby sector aimed at the second-strongest path.  When
    the link quality on the primary collapses (blockage), the caller
    switches to the standby instantly instead of re-sweeping.
    """

    def __init__(
        self,
        pattern_table: PatternTable,
        candidate_sector_ids: Optional[Sequence[int]] = None,
        min_separation_deg: float = 15.0,
        fusion: str = "product",
    ):
        if candidate_sector_ids is None:
            candidate_sector_ids = [s for s in pattern_table.sector_ids if s != 0]
        self.pattern_table = pattern_table
        self.candidate_sector_ids = list(candidate_sector_ids)
        self.estimator = AngleEstimator(pattern_table, fusion=fusion)
        self.min_separation_deg = min_separation_deg
        self._matrix = pattern_table.sample_matrix(
            self.estimator.search_grid, self.candidate_sector_ids
        )

    def _sector_at(self, azimuth_deg: float, elevation_deg: float) -> int:
        index = self.estimator.search_grid.nearest_index(azimuth_deg, elevation_deg)
        return int(self.candidate_sector_ids[int(np.argmax(self._matrix[:, index]))])

    def select_paths(
        self,
        measurements: Sequence[ProbeMeasurement],
        n_paths: int = 2,
        min_relative_correlation: float = 0.12,
    ) -> List[tuple]:
        """Per path: ``(PathEstimate, sector_id)``, strongest first.

        Paths whose best sector duplicates a stronger path's sector are
        dropped — a standby that steers the same beam is useless.
        """
        usable = [m for m in measurements if self.estimator.has_sector(m.sector_id)]
        if len(usable) < 2:
            return []
        surface = self.estimator.correlation_surface(usable)
        paths = extract_paths(
            surface,
            self.estimator.search_grid,
            n_paths=n_paths,
            min_separation_deg=self.min_separation_deg,
            min_relative_correlation=min_relative_correlation,
        )
        selected: List[tuple] = []
        used_sectors = set()
        for path in paths:
            sector_id = self._sector_at(path.azimuth_deg, path.elevation_deg)
            if sector_id in used_sectors:
                continue
            used_sectors.add(sector_id)
            selected.append((path, sector_id))
        return selected
