"""Durable WAL-style run registry: the service's memory across crashes.

The service plane used to hold every submission in process memory — a
SIGKILL of ``repro-bench serve`` forgot queued and in-flight runs even
though the *runner* layer had been resumable from sha256-verified
checkpoint journals since PR 4.  :class:`RunRegistry` closes that gap:
every run state transition (``queued → running → done/failed/
cancelled/deadline``, plus ``evicted`` on history eviction) is appended
to one JSONL write-ahead log under the service state dir, fsync'd in
durable mode, and replayed on startup so a restarted service re-admits
queued runs and resumes in-flight ones from their checkpoint journals.

File format (one JSON object per line), borrowing the
:class:`~repro.runtime.checkpoint.CheckpointStore` discipline:

* line 1 — header: ``{"format": "repro-run-registry", "version": 1}``.
* following lines — ``{"event": {...}, "sha256": <hex>}`` where the
  digest covers the event's canonical JSON.  A torn or corrupt tail
  (the expected outcome of SIGKILL mid-append) is dropped with a
  warning and physically truncated before the next append, so the log
  never grows a poisoned middle.

Replay folds events per run id in append order: an event's extra
fields merge into the run's state, ``to`` becomes its status, and an
``evicted`` event deletes the run.  :meth:`RunRegistry.compact`
rewrites the log as one snapshot event per live run — startup runs it
so the WAL stays proportional to retained runs, not to service age.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["RunRegistry"]

_LOGGER = logging.getLogger(__name__)

_FORMAT = "repro-run-registry"
_VERSION = 1

#: Statuses a run can transition to.  ``evicted`` is terminal-plus:
#: replay forgets the run entirely.
TRANSITIONS = (
    "queued",
    "running",
    "done",
    "failed",
    "cancelled",
    "deadline",
    "evicted",
)

#: Events kept beyond one snapshot per run before ``maybe_compact``
#: rewrites the log.
_COMPACT_SLACK = 4096


def _event_digest(event: Dict[str, Any]) -> str:
    canonical = json.dumps(event, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class RunRegistry:
    """Append-only, hash-verified journal of run state transitions."""

    def __init__(self, path, durable: bool = True):
        self.path = Path(path)
        self.durable = bool(durable)
        self._header = {"format": _FORMAT, "version": _VERSION}
        self._events: List[Dict[str, Any]] = []
        self._valid_end = 0
        self._tail_dropped = False
        self.tail_dropped = False
        loaded = self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if loaded:
            self.tail_dropped = self._tail_dropped
            if self._tail_dropped:
                # Same rule as the checkpoint journal: appending after
                # a torn line would corrupt the next entry too.
                with self.path.open("rb+") as repair:
                    repair.truncate(self._valid_end)
                    if self.durable:
                        os.fsync(repair.fileno())
            self._handle = self.path.open("a", encoding="utf-8")
        else:
            self._handle = self.path.open("w", encoding="utf-8")
            self._handle.write(json.dumps(self._header, sort_keys=True) + "\n")
            self._sync()

    # -- I/O -------------------------------------------------------------

    def _sync(self) -> None:
        self._handle.flush()
        if self.durable:
            os.fsync(self._handle.fileno())

    def _load(self) -> bool:
        """Read an existing registry; False means start fresh."""
        if not self.path.is_file():
            return False
        try:
            data = self.path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            _LOGGER.warning(
                "unreadable run registry %s (%s); starting fresh", self.path, error
            )
            return False
        lines = data.splitlines()
        if not lines:
            return False
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
        if header != self._header:
            _LOGGER.warning(
                "run registry %s has an unknown header; starting fresh", self.path
            )
            return False
        if len(lines) == 1 and not data.endswith("\n"):
            return False  # torn header alone
        self._valid_end = len(lines[0].encode("utf-8")) + 1
        size = len(data.encode("utf-8"))
        for number, line in enumerate(lines[1:], start=2):
            if self._valid_end + len(line.encode("utf-8")) + 1 > size:
                _LOGGER.warning(
                    "run registry %s: line %d is not newline-terminated; "
                    "dropping tail",
                    self.path,
                    number,
                )
                self._tail_dropped = True
                break
            try:
                entry = json.loads(line)
                event = entry["event"]
                digest = entry["sha256"]
            except (json.JSONDecodeError, KeyError, TypeError):
                _LOGGER.warning(
                    "run registry %s: dropping corrupt tail from line %d",
                    self.path,
                    number,
                )
                self._tail_dropped = True
                break
            if not isinstance(event, dict) or _event_digest(event) != digest:
                _LOGGER.warning(
                    "run registry %s: entry at line %d fails its digest; "
                    "dropping tail",
                    self.path,
                    number,
                )
                self._tail_dropped = True
                break
            self._events.append(event)
            self._valid_end += len(line.encode("utf-8")) + 1
        return True

    # -- recording -------------------------------------------------------

    def record(self, run_id: str, to: str, **fields: Any) -> None:
        """Journal one transition; durable before the caller proceeds.

        ``fields`` merge into the run's replayed state — the first
        ``queued`` event carries the whole submission (spec JSON,
        digest, checkpoint path, deadline), later events only deltas.
        """
        if to not in TRANSITIONS:
            raise ValueError(f"unknown transition '{to}'")
        event = {"run": str(run_id), "to": to, **fields}
        entry = {"event": event, "sha256": _event_digest(event)}
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._sync()
        self._events.append(event)

    # -- replay ----------------------------------------------------------

    @property
    def events(self) -> int:
        """Events currently held (post-truncation), excluding the header."""
        return len(self._events)

    def replay(self) -> Dict[str, Dict[str, Any]]:
        """Fold the log into per-run state, in append order.

        Returns ``run id → state`` where state holds every field any
        event carried plus ``status`` (the last transition).  Evicted
        runs are absent.  Replaying twice gives the same answer —
        pinned by the chaos harness's registry-consistency invariant.
        """
        runs: Dict[str, Dict[str, Any]] = {}
        for event in self._events:
            run_id = event.get("run")
            to = event.get("to")
            if not isinstance(run_id, str) or to not in TRANSITIONS:
                continue
            if to == "evicted":
                runs.pop(run_id, None)
                continue
            state = runs.setdefault(run_id, {"id": run_id})
            for key, value in event.items():
                if key not in ("run", "to"):
                    state[key] = value
            state["status"] = to
        return runs

    # -- compaction ------------------------------------------------------

    def compact(self) -> int:
        """Rewrite the log as one snapshot event per live run.

        Returns the number of events dropped.  The rewrite is atomic
        (tmp file + ``os.replace``) so a crash mid-compaction leaves
        either the old log or the new one, never a torn hybrid.
        """
        runs = self.replay()
        snapshots: List[Dict[str, Any]] = []
        for run_id, state in runs.items():
            event = {
                key: value
                for key, value in state.items()
                if key not in ("id", "status")
            }
            event["run"] = run_id
            event["to"] = state.get("status", "queued")
            snapshots.append(event)
        dropped = len(self._events) - len(snapshots)
        if dropped <= 0:
            return 0
        tmp = self.path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(self._header, sort_keys=True) + "\n")
            for event in snapshots:
                entry = {"event": event, "sha256": _event_digest(event)}
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            if self.durable:
                os.fsync(handle.fileno())
        self._handle.close()
        os.replace(tmp, self.path)
        self._handle = self.path.open("a", encoding="utf-8")
        self._sync()
        self._events = snapshots
        return dropped

    def maybe_compact(self) -> int:
        """Compact when the log has grown well past one event per run."""
        if len(self._events) > len(self.replay()) + _COMPACT_SLACK:
            return self.compact()
        return 0

    def close(self) -> None:
        if getattr(self, "_handle", None) is not None:
            self._handle.close()
            self._handle = None
