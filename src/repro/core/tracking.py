"""Continuous beam tracking: sweep → select → repeat.

Stations re-train about once per second (§4.1); the tracker wires a
probe strategy, an optional adaptive probe-count controller and a
selector into that loop.  The channel is abstracted behind a *measure*
callable so the tracker works against live protocol sessions, recorded
sweeps, or synthetic data alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..mac.timing import mutual_training_time_us
from .adaptive import AdaptiveProbeController
from .compressive import CompressiveSectorSelector
from .measurements import ProbeMeasurement
from .probes import ProbeStrategy, RandomProbeStrategy
from .selector import SelectionResult

__all__ = ["TrackStep", "SectorTracker", "MeasureFn"]

#: Probes a set of sector IDs, returning the firmware measurements.
MeasureFn = Callable[[Sequence[int], np.random.Generator], List[ProbeMeasurement]]


@dataclass(frozen=True)
class TrackStep:
    """One iteration of the tracking loop."""

    probe_ids: List[int]
    result: SelectionResult
    training_time_us: float


class SectorTracker:
    """Runs compressive selection as a continuous tracking loop."""

    def __init__(
        self,
        selector: CompressiveSectorSelector,
        probe_strategy: Optional[ProbeStrategy] = None,
        n_probes: int = 14,
        adaptive: Optional[AdaptiveProbeController] = None,
    ):
        """
        Args:
            selector: the compressive selector (owns the patterns).
            probe_strategy: subset policy; random, like the paper.
            n_probes: fixed probe budget (ignored when ``adaptive``).
            adaptive: optional §7 controller that scales the budget
                with observed motion.
        """
        self.selector = selector
        self.probe_strategy = (
            probe_strategy if probe_strategy is not None else RandomProbeStrategy()
        )
        self.n_probes = n_probes
        self.adaptive = adaptive
        self.history: List[TrackStep] = []

    def _budget(self) -> int:
        budget = self.adaptive.n_probes if self.adaptive is not None else self.n_probes
        return min(budget, len(self.selector.candidate_sector_ids))

    def step(self, measure: MeasureFn, rng: np.random.Generator) -> TrackStep:
        """Perform one training round and return what happened."""
        n_probes = self._budget()
        probe_ids = self.probe_strategy.choose(
            n_probes, self.selector.candidate_sector_ids, rng
        )
        measurements = measure(probe_ids, rng)
        result = self.selector.select(measurements)
        if self.adaptive is not None:
            self.adaptive.update(result.estimate)
        step = TrackStep(
            probe_ids=list(probe_ids),
            result=result,
            training_time_us=mutual_training_time_us(n_probes),
        )
        self.history.append(step)
        return step

    def run(
        self, measure: MeasureFn, n_steps: int, rng: np.random.Generator
    ) -> List[TrackStep]:
        """Run ``n_steps`` training rounds."""
        return [self.step(measure, rng) for _ in range(n_steps)]

    @property
    def selections(self) -> List[int]:
        """Sector chosen at each completed step."""
        return [step.result.sector_id for step in self.history]

    @property
    def total_training_time_us(self) -> float:
        return float(sum(step.training_time_us for step in self.history))
