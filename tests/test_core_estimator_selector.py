"""Tests for angle estimation (Eqs. 3/5) and sector selection (Eqs. 1/4)."""

import numpy as np
import pytest

from repro.core import (
    AngleEstimator,
    CompressiveSectorSelector,
    ProbeMeasurement,
    SectorSweepSelector,
    from_sweep_reports,
)
from repro.core.estimator import _finite_argmax
from repro.firmware import SweepReport
from repro.geometry import AngularGrid


def synthetic_measurements(pattern_table, azimuth, elevation, sector_ids, rssi_floor=-71.5):
    """Noise-free measurements a receiver at (azimuth, elevation) sees."""
    return [
        ProbeMeasurement(
            sector_id=s,
            snr_db=float(pattern_table.gain(s, azimuth, elevation)),
            rssi_dbm=float(pattern_table.gain(s, azimuth, elevation)) + rssi_floor,
        )
        for s in sector_ids
    ]


class TestProbeMeasurements:
    def test_from_sweep_reports_latest_wins(self):
        reports = [
            SweepReport(sector_id=3, cdown=10, snr_db=1.0, rssi_dbm=-70.0, sweep_index=1),
            SweepReport(sector_id=3, cdown=10, snr_db=6.0, rssi_dbm=-64.0, sweep_index=2),
            SweepReport(sector_id=5, cdown=9, snr_db=2.0, rssi_dbm=-69.0, sweep_index=2),
        ]
        measurements = from_sweep_reports(reports)
        by_id = {m.sector_id: m for m in measurements}
        assert set(by_id) == {3, 5}
        assert by_id[3].snr_db == 6.0

    def test_sector_id_validated(self):
        with pytest.raises(ValueError):
            ProbeMeasurement(sector_id=99, snr_db=0.0, rssi_dbm=-70.0)


class TestSectorSweepSelector:
    def test_argmax(self):
        selector = SectorSweepSelector()
        measurements = [
            ProbeMeasurement(1, 3.0, -68.0),
            ProbeMeasurement(2, 9.0, -62.0),
            ProbeMeasurement(3, 5.0, -66.0),
        ]
        assert selector.select(measurements).sector_id == 2

    def test_empty_sweep_keeps_last(self):
        selector = SectorSweepSelector(initial_sector_id=4)
        result = selector.select([])
        assert result.sector_id == 4
        assert result.fallback
        selector.select([ProbeMeasurement(7, 1.0, -70.0)])
        assert selector.select([]).sector_id == 7

    def test_outlier_swings_argmax(self):
        """The instability mechanism of §6.3: outliers crown the wrong sector."""
        selector = SectorSweepSelector()
        measurements = [
            ProbeMeasurement(1, 9.0, -62.0),
            ProbeMeasurement(2, 8.5 + 10.0, -63.0),  # +10 dB outlier
        ]
        assert selector.select(measurements).sector_id == 2


class TestFiniteArgmax:
    def test_matches_plain_argmax_on_finite_surfaces(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            surface = rng.normal(size=257)
            assert _finite_argmax(surface) == int(np.argmax(surface))

    def test_nan_winner_is_retaken_over_finite_entries(self):
        surface = np.array([0.3, np.nan, 0.9, 0.1])
        assert int(np.argmax(surface)) == 1  # the mechanism under repair
        assert _finite_argmax(surface) == 2

    def test_all_nan_surface_keeps_the_argmax_fallback(self):
        surface = np.full(5, np.nan)
        assert _finite_argmax(surface) == int(np.argmax(surface))


class TestAngleEstimator:
    def test_recovers_direction_from_clean_probes(self, pattern_table):
        estimator = AngleEstimator(pattern_table)
        sector_ids = [s for s in pattern_table.sector_ids if s != 0][:14]
        truth = (20.0, 8.0)
        estimate = estimator.estimate(
            synthetic_measurements(pattern_table, *truth, sector_ids)
        )
        assert abs(estimate.azimuth_deg - truth[0]) <= 4.0
        assert abs(estimate.elevation_deg - truth[1]) <= 8.0

    def test_needs_two_probes(self, pattern_table):
        estimator = AngleEstimator(pattern_table)
        with pytest.raises(ValueError):
            estimator.estimate([ProbeMeasurement(1, 5.0, -66.0)])

    def test_unknown_probe_sector_rejected(self, pattern_table):
        estimator = AngleEstimator(pattern_table)
        with pytest.raises(KeyError):
            estimator.estimate(
                [ProbeMeasurement(40, 5.0, -66.0), ProbeMeasurement(41, 5.0, -66.0)]
            )

    def test_fusion_validation(self, pattern_table):
        with pytest.raises(ValueError):
            AngleEstimator(pattern_table, fusion="both")

    def test_product_fusion_suppresses_single_channel_outlier(self, pattern_table):
        """§5: an SNR-only outlier should not move the fused estimate much."""
        sector_ids = [s for s in pattern_table.sector_ids if s != 0][:16]
        truth = (10.0, 4.0)
        clean = synthetic_measurements(pattern_table, *truth, sector_ids)
        corrupted = list(clean)
        # Severe +10 dB outlier on one probe's SNR, RSSI untouched.
        corrupted[3] = ProbeMeasurement(
            corrupted[3].sector_id, corrupted[3].snr_db + 10.0, corrupted[3].rssi_dbm
        )
        snr_only = AngleEstimator(pattern_table, fusion="snr").estimate(corrupted)
        fused = AngleEstimator(pattern_table, fusion="product").estimate(corrupted)
        clean_estimate = AngleEstimator(pattern_table, fusion="product").estimate(clean)
        error_snr = abs(snr_only.azimuth_deg - clean_estimate.azimuth_deg)
        error_fused = abs(fused.azimuth_deg - clean_estimate.azimuth_deg)
        assert error_fused <= error_snr

    def test_correlation_surface_shape(self, pattern_table):
        estimator = AngleEstimator(pattern_table)
        sector_ids = [s for s in pattern_table.sector_ids if s != 0][:6]
        surface = estimator.correlation_surface(
            synthetic_measurements(pattern_table, 0.0, 0.0, sector_ids)
        )
        assert surface.shape == (estimator.search_grid.n_points,)

    def test_nan_probes_dropped_not_propagated(self, pattern_table, caplog):
        """Non-finite firmware readings must not poison the argmax."""
        import logging

        sector_ids = [s for s in pattern_table.sector_ids if s != 0][:14]
        truth = (20.0, 8.0)
        clean = synthetic_measurements(pattern_table, *truth, sector_ids)
        poisoned = list(clean)
        poisoned[2] = ProbeMeasurement(poisoned[2].sector_id, float("nan"), -66.0)
        poisoned[5] = ProbeMeasurement(poisoned[5].sector_id, 5.0, float("inf"))
        estimator = AngleEstimator(pattern_table)
        with caplog.at_level(logging.WARNING, logger="repro.core.estimator"):
            estimate = estimator.estimate(poisoned)
        assert "dropped 2 of 14" in caplog.text
        assert estimate.n_probes_used == 12
        assert np.isfinite(estimate.correlation)
        assert abs(estimate.azimuth_deg - truth[0]) <= 4.0

    def test_nan_on_unused_channel_is_kept(self, pattern_table):
        """SNR-only fusion must not drop probes over a NaN RSSI."""
        sector_ids = [s for s in pattern_table.sector_ids if s != 0][:8]
        measurements = synthetic_measurements(pattern_table, 0.0, 0.0, sector_ids)
        measurements[0] = ProbeMeasurement(
            measurements[0].sector_id, measurements[0].snr_db, float("nan")
        )
        estimator = AngleEstimator(pattern_table, fusion="snr")
        assert estimator.estimate(measurements).n_probes_used == len(measurements)

    def test_all_nan_probes_raise_actionable_error(self, pattern_table):
        estimator = AngleEstimator(pattern_table)
        measurements = [
            ProbeMeasurement(s, float("nan"), float("nan"))
            for s in [s for s in pattern_table.sector_ids if s != 0][:5]
        ]
        with pytest.raises(ValueError, match="non-finite"):
            estimator.estimate(measurements)

    def test_finite_surface_argmax_is_bit_identical_to_plain_argmax(
        self, pattern_table
    ):
        estimator = AngleEstimator(pattern_table)
        sector_ids = [s for s in pattern_table.sector_ids if s != 0][:14]
        measurements = synthetic_measurements(pattern_table, 20.0, 8.0, sector_ids)
        surface = estimator.correlation_surface(measurements)
        assert np.isfinite(surface).all()
        assert estimator.estimate(measurements).grid_index == int(np.argmax(surface))

    def test_estimate_routes_around_a_nan_grid_point(
        self, pattern_table, monkeypatch
    ):
        """A NaN surface entry must not win the argmax (it beats every
        comparison inside ``np.argmax``)."""
        estimator = AngleEstimator(pattern_table)
        sector_ids = [s for s in pattern_table.sector_ids if s != 0][:14]
        measurements = synthetic_measurements(pattern_table, 20.0, 8.0, sector_ids)
        clean = estimator.estimate(measurements)
        real_surface = estimator._surface

        def poisoned(kept):
            surface = real_surface(kept).copy()
            surface[0 if clean.grid_index != 0 else 1] = np.nan
            return surface

        monkeypatch.setattr(estimator, "_surface", poisoned)
        assert estimator.estimate(measurements) == clean

    def test_batched_estimate_routes_around_a_nan_grid_point(
        self, pattern_table, monkeypatch
    ):
        import repro.core.estimator as estimator_module

        estimator = AngleEstimator(pattern_table, fusion="snr")
        sector_ids = [s for s in pattern_table.sector_ids if s != 0][:8]
        measurements = synthetic_measurements(pattern_table, 10.0, 4.0, sector_ids)
        ids = np.array([[m.sector_id for m in measurements]])
        snr = np.array([[m.snr_db for m in measurements]])
        (clean,) = estimator.estimate_batch(ids, snr_db=snr)
        real_correlate = estimator_module._correlate

        def poisoned(values, unit):
            surface = real_correlate(values, unit).copy()
            surface[0 if clean.grid_index != 0 else 1] = np.nan
            return surface

        monkeypatch.setattr(estimator_module, "_correlate", poisoned)
        (estimate,) = estimator.estimate_batch(ids, snr_db=snr)
        assert estimate == clean

    def test_custom_search_grid(self, pattern_table):
        grid = AngularGrid(np.arange(-30.0, 31.0, 2.0), np.array([0.0]))
        estimator = AngleEstimator(pattern_table, search_grid=grid)
        sector_ids = [s for s in pattern_table.sector_ids if s != 0][:14]
        estimate = estimator.estimate(
            synthetic_measurements(pattern_table, 12.0, 0.0, sector_ids)
        )
        assert -30.0 <= estimate.azimuth_deg <= 30.0
        assert estimate.elevation_deg == 0.0


class TestCompressiveSectorSelector:
    def test_two_step_selection_close_to_pattern_best(self, pattern_table):
        selector = CompressiveSectorSelector(pattern_table)
        truth = (-15.0, 4.0)
        sector_ids = selector.candidate_sector_ids[:14]
        result = selector.select(
            synthetic_measurements(pattern_table, *truth, sector_ids)
        )
        assert result.estimate is not None
        expected = pattern_table.best_sector(
            result.estimate.azimuth_deg, result.estimate.elevation_deg,
            selector.candidate_sector_ids,
        )
        assert result.sector_id == expected

    def test_candidates_default_excludes_rx(self, pattern_table):
        selector = CompressiveSectorSelector(pattern_table)
        assert 0 not in selector.candidate_sector_ids
        assert selector.n_candidates == 34

    def test_selection_can_exceed_probed_set(self, pattern_table):
        """Eq. 4's point: the winner need not have been probed."""
        selector = CompressiveSectorSelector(pattern_table)
        winners = set()
        probed = selector.candidate_sector_ids[:6]
        for azimuth in (-40.0, -10.0, 15.0, 45.0):
            result = selector.select(
                synthetic_measurements(pattern_table, azimuth, 0.0, probed)
            )
            winners.add(result.sector_id)
        assert winners - set(probed), "some winner should come from outside the probes"

    def test_fallback_on_too_few_probes(self, pattern_table):
        selector = CompressiveSectorSelector(pattern_table, initial_sector_id=3)
        empty = selector.select([])
        assert empty.fallback and empty.sector_id == 3
        single = selector.select([ProbeMeasurement(5, 9.0, -60.0)])
        assert single.fallback and single.sector_id == 5
        # The fallback updates the remembered selection.
        assert selector.select([]).sector_id == 5

    def test_unknown_candidate_rejected(self, pattern_table):
        with pytest.raises(ValueError):
            CompressiveSectorSelector(pattern_table, candidate_sector_ids=[1, 40])

    def test_min_probes_validated(self, pattern_table):
        with pytest.raises(ValueError):
            CompressiveSectorSelector(pattern_table, min_probes=1)

    def test_probes_outside_table_ignored(self, pattern_table):
        selector = CompressiveSectorSelector(pattern_table)
        sector_ids = selector.candidate_sector_ids[:10]
        measurements = synthetic_measurements(pattern_table, 0.0, 0.0, sector_ids)
        # A probe for an unknown sector is dropped, not fatal.
        measurements.append(ProbeMeasurement(40, 11.0, -60.0))
        result = selector.select(measurements)
        assert result.estimate is not None
        assert result.estimate.n_probes_used == 10

    def test_best_sector_at(self, pattern_table):
        sector = pattern_table.best_sector(0.0, 0.0)
        selector = CompressiveSectorSelector(pattern_table)
        assert selector.best_sector_at(0.0, 0.0) == sector
