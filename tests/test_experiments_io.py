"""Tests for result JSON serialization and the transfer experiment."""

import json

import numpy as np
import pytest

from repro.experiments import (
    Fig10Config,
    TransferConfig,
    dump_result_json,
    load_result_json,
    result_to_dict,
    run_fig10,
    run_pattern_transfer,
)
from repro.experiments.common import BoxStats


class TestResultSerialization:
    def test_fig10_roundtrip(self, tmp_path):
        result = run_fig10(Fig10Config())
        path = str(tmp_path / "fig10.json")
        dump_result_json(result, path)
        payload = load_result_json(path)
        assert payload["experiment"] == "Fig10Result"
        assert payload["data"]["ssw_time_ms"] == pytest.approx(1.2731)
        assert len(payload["data"]["css_time_ms"]) == len(
            payload["data"]["probe_counts"]
        )

    def test_numpy_types_sanitized(self):
        stats = BoxStats.from_samples(np.array([1.0, 2.0, 3.0]))
        data = result_to_dict(stats)
        # Everything must be JSON-encodable without custom encoders.
        json.dumps(data)
        assert data["median"] == 2.0
        assert data["n_samples"] == 3

    def test_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            result_to_dict({"just": "a dict"})

    def test_rejects_unserializable_member(self):
        import dataclasses

        @dataclasses.dataclass
        class Weird:
            payload: object

        with pytest.raises(TypeError):
            result_to_dict(Weird(payload=object()))

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_result_json(str(path))


class TestPatternTransfer:
    @pytest.fixture(scope="class")
    def result(self):
        return run_pattern_transfer(
            TransferConfig(azimuth_step_deg=15.0, n_sweeps=4)
        )

    def test_both_tables_work(self, result):
        for name in ("own (device B)", "foreign (device A)"):
            assert result.azimuth_error_deg[name] < 15.0
            assert result.snr_loss_db[name] < 5.0

    def test_transfer_penalty_small(self, result):
        gap = abs(
            result.snr_loss_db["own (device B)"]
            - result.snr_loss_db["foreign (device A)"]
        )
        assert gap < 2.0

    def test_serializes(self, result, tmp_path):
        dump_result_json(result, str(tmp_path / "transfer.json"))
        payload = load_result_json(str(tmp_path / "transfer.json"))
        assert payload["experiment"] == "TransferResult"
