"""Tests for human blockage and mobility trajectories."""

import numpy as np
import pytest

from repro.channel import (
    ArcTrajectory,
    HumanBlocker,
    LinearTrajectory,
    MobileLink,
    anechoic_chamber,
    conference_room,
)


class TestHumanBlocker:
    def test_blocks_crossing_segment(self):
        blocker = HumanBlocker(position_m=np.array([1.5, 0.0, 0.0]))
        assert blocker.blocks_segment(np.zeros(3), np.array([3.0, 0.0, 0.0]))

    def test_misses_distant_segment(self):
        blocker = HumanBlocker(position_m=np.array([1.5, 2.0, 0.0]))
        assert not blocker.blocks_segment(np.zeros(3), np.array([3.0, 0.0, 0.0]))

    def test_full_attenuation_inside_radius(self):
        blocker = HumanBlocker(position_m=np.array([1.5, 0.1, 0.0]), attenuation_db=22.0)
        loss = blocker.loss_on_segment_db(np.zeros(3), np.array([3.0, 0.0, 0.0]))
        assert loss == pytest.approx(22.0)

    def test_soft_shadow_edge(self):
        blocker = HumanBlocker(
            position_m=np.array([1.5, 0.0, 0.0]), radius_m=0.25, attenuation_db=22.0
        )
        # 0.375 m lateral offset: between 1 and 2 radii -> partial loss.
        loss = blocker.loss_on_segment_db(
            np.array([0.0, 0.375, 0.0]), np.array([3.0, 0.375, 0.0])
        )
        assert 0.0 < loss < 22.0

    def test_no_loss_beyond_two_radii(self):
        blocker = HumanBlocker(position_m=np.array([1.5, 0.0, 0.0]), radius_m=0.25)
        loss = blocker.loss_on_segment_db(
            np.array([0.0, 0.6, 0.0]), np.array([3.0, 0.6, 0.0])
        )
        assert loss == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HumanBlocker(position_m=np.zeros(2))
        with pytest.raises(ValueError):
            HumanBlocker(position_m=np.zeros(3), radius_m=0.0)


class TestEnvironmentBlockage:
    def test_blocked_los_attenuated(self):
        chamber = anechoic_chamber(3.0)
        blocker = HumanBlocker(position_m=np.array([1.5, 0.0, 0.0]))
        blocked = chamber.with_blockers([blocker])
        clear_ray = chamber.rays()[0]
        blocked_ray = blocked.rays()[0]
        assert blocked_ray.extra_loss_db == pytest.approx(
            clear_ray.extra_loss_db + blocker.attenuation_db
        )

    def test_reflected_paths_survive_los_blocker(self):
        room = conference_room(6.0)
        blocker = HumanBlocker(position_m=np.array([3.0, 0.0, 0.0]))
        blocked = room.with_blockers([blocker])
        clear_rays = room.rays()
        blocked_rays = blocked.rays()
        assert blocked_rays[0].extra_loss_db > clear_rays[0].extra_loss_db
        # At least one non-LOS ray is untouched (the bounce avoids the
        # center of the room).
        untouched = [
            b for c, b in zip(clear_rays[1:], blocked_rays[1:])
            if b.extra_loss_db == c.extra_loss_db
        ]
        assert untouched

    def test_with_blockers_is_nonmutating(self):
        room = conference_room(6.0)
        room.with_blockers([HumanBlocker(position_m=np.array([3.0, 0.0, 0.0]))])
        assert not room.blockers


class TestTrajectories:
    def test_linear(self):
        trajectory = LinearTrajectory(
            start_m=np.array([1.0, 0.0, 0.0]), velocity_m_s=np.array([0.0, 0.5, 0.0])
        )
        np.testing.assert_allclose(trajectory.position_at(4.0), [1.0, 2.0, 0.0])

    def test_arc_radius_preserved(self):
        trajectory = ArcTrajectory(
            center_m=np.zeros(3), radius_m=5.0, angular_speed_deg_s=10.0
        )
        for time_s in (0.0, 3.0, 7.0):
            position = trajectory.position_at(time_s)
            assert np.linalg.norm(position[:2]) == pytest.approx(5.0)

    def test_arc_angular_speed(self):
        trajectory = ArcTrajectory(
            center_m=np.zeros(3), radius_m=2.0, angular_speed_deg_s=30.0
        )
        p0 = trajectory.position_at(0.0)
        p1 = trajectory.position_at(1.0)
        angle = np.rad2deg(
            np.arccos(np.clip((p0 @ p1) / (np.linalg.norm(p0) * np.linalg.norm(p1)), -1, 1))
        )
        assert angle == pytest.approx(30.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArcTrajectory(center_m=np.zeros(3), radius_m=0.0, angular_speed_deg_s=1.0)
        with pytest.raises(ValueError):
            LinearTrajectory(start_m=np.zeros(2), velocity_m_s=np.zeros(3))


class TestMobileLink:
    @pytest.fixture(scope="class")
    def link(self, testbed):
        trajectory = ArcTrajectory(
            center_m=np.zeros(3),
            radius_m=5.0,
            angular_speed_deg_s=10.0,
            start_angle_deg=-30.0,
        )
        return MobileLink(
            conference_room(6.0),
            trajectory,
            testbed.dut_antenna,
            testbed.dut_codebook,
            testbed.ref_antenna,
            testbed.ref_codebook,
            budget=testbed.budget,
        )

    # class-scoped testbed alias
    @pytest.fixture(scope="class")
    def testbed(self):
        from repro.experiments.common import build_testbed

        return build_testbed()

    def test_snr_vector_shape(self, link, testbed):
        snr = link.true_snr_at(0.0)
        assert snr.shape == (len(testbed.tx_sector_ids),)

    def test_direction_tracks_the_walk(self, link):
        d0 = link.device_direction_at(0.0)
        d3 = link.device_direction_at(3.0)
        assert d0[0] == pytest.approx(-30.0, abs=1.0)
        assert d3[0] == pytest.approx(0.0, abs=1.0)

    def test_link_stays_alive_along_arc(self, link):
        for time_s in np.linspace(0.0, 6.0, 7):
            assert link.true_snr_at(float(time_s)).max() > 0.0

    def test_best_sector_changes_with_position(self, link, testbed):
        # -30° vs 0°: distinct winners.  (±30° can share a winner — the
        # multi-lobe sector 13 covers both, which is physically right.)
        tx_ids = testbed.tx_sector_ids
        best_start = tx_ids[int(np.argmax(link.true_snr_at(0.0)))]
        best_mid = tx_ids[int(np.argmax(link.true_snr_at(3.0)))]
        assert best_start != best_mid
