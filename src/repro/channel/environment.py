"""Experiment environments: anechoic chamber, lab, conference room.

An :class:`Environment` fixes the world geometry of one measurement
scenario — transmitter and receiver positions plus any reflecting
surfaces — and enumerates the propagation rays between the endpoints.
The three factories mirror the paper's setups: an anechoic chamber
(pattern measurement, §4.2), a lab at 3 m and a conference room at 6 m
with whiteboard reflectors (evaluation, §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .blockage import HumanBlocker, apply_blockage
from .rays import Ray
from .reflectors import ReflectorPanel

__all__ = ["Environment", "anechoic_chamber", "lab_environment", "conference_room"]


@dataclass(frozen=True)
class Environment:
    """World geometry of one link experiment.

    The transmitter sits at :attr:`tx_position_m` (on the rotation head
    in the paper's setups) and the receiver at :attr:`rx_position_m`,
    facing each other along the world x axis.

    Attributes:
        name: human-readable scenario name.
        tx_position_m / rx_position_m: endpoint positions (world frame).
        reflectors: specular panels contributing first-order bounces.
        shadowing_std_db: slow log-normal shadowing applied per ray by
            the link simulator (0 in the anechoic chamber).
        blockers: human-body obstacles attenuating the rays they cross.
    """

    name: str
    tx_position_m: np.ndarray
    rx_position_m: np.ndarray
    reflectors: List[ReflectorPanel] = field(default_factory=list)
    shadowing_std_db: float = 0.0
    blockers: List[HumanBlocker] = field(default_factory=list)

    def __post_init__(self) -> None:
        tx = np.asarray(self.tx_position_m, dtype=float)
        rx = np.asarray(self.rx_position_m, dtype=float)
        if tx.shape != (3,) or rx.shape != (3,):
            raise ValueError("positions must be 3-vectors")
        if np.linalg.norm(rx - tx) < 1e-6:
            raise ValueError("endpoints must be separated")
        if self.shadowing_std_db < 0:
            raise ValueError("shadowing std cannot be negative")
        object.__setattr__(self, "tx_position_m", tx)
        object.__setattr__(self, "rx_position_m", rx)

    @property
    def distance_m(self) -> float:
        return float(np.linalg.norm(self.rx_position_m - self.tx_position_m))

    def rays(self) -> List[Ray]:
        """LOS ray plus one ray per reflector with a valid bounce."""
        return self.rays_between(self.tx_position_m, self.rx_position_m)

    def rays_between(
        self, tx_position_m: np.ndarray, rx_position_m: np.ndarray
    ) -> List[Ray]:
        """Rays between arbitrary endpoints inside this room.

        Used for the reverse link direction (rays are reciprocal but
        departure/arrival roles swap) and for monitor-mode stations at
        third positions.  Blockers attenuate every ray segment they
        intersect.
        """
        rays = [Ray.from_points(tx_position_m, rx_position_m)]
        bounce_points = [None]
        for panel in self.reflectors:
            bounce = panel.bounce_point(tx_position_m, rx_position_m)
            if bounce is not None:
                rays.append(
                    Ray.from_points(
                        tx_position_m,
                        rx_position_m,
                        via_point_m=bounce,
                        extra_loss_db=panel.reflection_loss_db,
                    )
                )
                bounce_points.append(bounce)
        return apply_blockage(rays, self.blockers, tx_position_m, rx_position_m, bounce_points)

    def with_blockers(self, blockers: List[HumanBlocker]) -> "Environment":
        """A copy of this environment with the given obstacles added."""
        return Environment(
            name=self.name,
            tx_position_m=self.tx_position_m,
            rx_position_m=self.rx_position_m,
            reflectors=list(self.reflectors),
            shadowing_std_db=self.shadowing_std_db,
            blockers=list(self.blockers) + list(blockers),
        )


def anechoic_chamber(distance_m: float = 3.0) -> Environment:
    """Reflection-free chamber used for the pattern measurements."""
    return Environment(
        name="anechoic-chamber",
        tx_position_m=np.zeros(3),
        rx_position_m=np.array([distance_m, 0.0, 0.0]),
        reflectors=[],
        shadowing_std_db=0.0,
    )


def lab_environment(distance_m: float = 3.0) -> Environment:
    """Lab at 3 m: mostly LOS with one weak side reflector."""
    side_wall = ReflectorPanel(
        center_m=np.array([distance_m / 2.0, 1.8, 0.0]),
        normal=np.array([0.0, -1.0, 0.0]),
        width_m=2.5,
        height_m=1.5,
        reflection_loss_db=14.0,
    )
    return Environment(
        name="lab",
        tx_position_m=np.zeros(3),
        rx_position_m=np.array([distance_m, 0.0, 0.0]),
        reflectors=[side_wall],
        shadowing_std_db=0.4,
    )


def conference_room(distance_m: float = 6.0) -> Environment:
    """Conference room at 6 m with whiteboards on both side walls.

    The paper calls out whiteboards as strong reflectors that create
    noticeable multipath and degrade the angle estimation accuracy.
    """
    whiteboard_left = ReflectorPanel(
        center_m=np.array([distance_m / 2.0, -2.2, 0.2]),
        normal=np.array([0.0, 1.0, 0.0]),
        width_m=3.0,
        height_m=1.2,
        reflection_loss_db=12.0,
    )
    whiteboard_right = ReflectorPanel(
        center_m=np.array([distance_m / 2.0, 2.2, 0.2]),
        normal=np.array([0.0, -1.0, 0.0]),
        width_m=2.0,
        height_m=1.2,
        reflection_loss_db=14.0,
    )
    table = ReflectorPanel(
        center_m=np.array([distance_m / 2.0, 0.0, -0.8]),
        normal=np.array([0.0, 0.0, 1.0]),
        width_m=4.0,
        height_m=1.5,
        reflection_loss_db=16.0,
    )
    return Environment(
        name="conference-room",
        tx_position_m=np.zeros(3),
        rx_position_m=np.array([distance_m, 0.0, 0.0]),
        reflectors=[whiteboard_left, whiteboard_right, table],
        shadowing_std_db=0.8,
    )
