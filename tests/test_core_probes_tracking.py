"""Tests for probe strategies, adaptive control, and the tracking loop."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveProbeController,
    AngleEstimate,
    CompressiveSectorSelector,
    FixedProbeStrategy,
    GainDiverseProbeStrategy,
    ProbeMeasurement,
    RandomProbeStrategy,
    SectorTracker,
)


class TestRandomProbeStrategy:
    def test_size_and_uniqueness(self, rng):
        strategy = RandomProbeStrategy()
        chosen = strategy.choose(10, list(range(1, 35)), rng)
        assert len(chosen) == 10
        assert len(set(chosen)) == 10
        assert set(chosen) <= set(range(1, 35))

    def test_varies_between_sweeps(self, rng):
        strategy = RandomProbeStrategy()
        available = list(range(1, 35))
        draws = {tuple(strategy.choose(10, available, rng)) for _ in range(10)}
        assert len(draws) > 1

    def test_validation(self, rng):
        strategy = RandomProbeStrategy()
        with pytest.raises(ValueError):
            strategy.choose(0, [1, 2], rng)
        with pytest.raises(ValueError):
            strategy.choose(3, [1, 2], rng)


class TestFixedProbeStrategy:
    def test_stable_prefix(self, rng):
        strategy = FixedProbeStrategy([5, 9, 13, 2])
        assert strategy.choose(2, [2, 5, 9, 13], rng) == [5, 9]
        assert strategy.choose(2, [2, 5, 9, 13], rng) == [5, 9]

    def test_filters_unavailable(self, rng):
        strategy = FixedProbeStrategy([5, 9, 13])
        assert strategy.choose(2, [9, 13], rng) == [9, 13]

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedProbeStrategy([1, 1])

    def test_too_few_usable(self, rng):
        strategy = FixedProbeStrategy([5])
        with pytest.raises(ValueError):
            strategy.choose(2, [5, 6], rng)


class TestGainDiverseProbeStrategy:
    def test_deterministic_and_cached(self, pattern_table, rng):
        strategy = GainDiverseProbeStrategy(pattern_table)
        available = [s for s in pattern_table.sector_ids if s != 0]
        first = strategy.choose(8, available, rng)
        second = strategy.choose(8, available, rng)
        assert first == second

    def test_prefix_property(self, pattern_table, rng):
        """Smaller budgets are prefixes of larger ones (greedy order)."""
        strategy = GainDiverseProbeStrategy(pattern_table)
        available = [s for s in pattern_table.sector_ids if s != 0]
        assert strategy.choose(6, available, rng) == strategy.choose(12, available, rng)[:6]

    def test_diversity_beats_random_similarity(self, pattern_table, rng):
        """The greedy set's patterns overlap less than a random set's."""
        from repro.core import normalize_rows, to_linear_power

        available = [s for s in pattern_table.sector_ids if s != 0]
        strategy = GainDiverseProbeStrategy(pattern_table)

        def mean_similarity(ids):
            rows = normalize_rows(
                np.array([to_linear_power(pattern_table.pattern(s).ravel()) for s in ids])
            )
            similarity = rows @ rows.T
            off_diagonal = similarity[~np.eye(len(ids), dtype=bool)]
            return float(off_diagonal.mean())

        diverse = mean_similarity(strategy.choose(10, available, rng))
        random_sets = [
            mean_similarity(RandomProbeStrategy().choose(10, available, rng))
            for _ in range(10)
        ]
        assert diverse < np.mean(random_sets)


class TestAdaptiveProbeController:
    def _estimate(self, azimuth: float) -> AngleEstimate:
        return AngleEstimate(
            azimuth_deg=azimuth, elevation_deg=0.0, correlation=0.9, n_probes_used=14
        )

    def test_starts_at_ceiling(self):
        controller = AdaptiveProbeController(min_probes=6, max_probes=20)
        assert controller.n_probes == 20

    def test_decays_when_static(self):
        controller = AdaptiveProbeController(min_probes=6, max_probes=20, decrease_step=2)
        for _ in range(20):
            controller.update(self._estimate(10.0))
        assert controller.n_probes == 6

    def test_reopens_on_motion(self):
        controller = AdaptiveProbeController(
            min_probes=6, max_probes=20, motion_threshold_deg=5.0, increase_step=6
        )
        for _ in range(20):
            controller.update(self._estimate(10.0))
        controller.update(self._estimate(40.0))  # big jump
        assert controller.n_probes > 6

    def test_failed_sweep_treated_as_motion(self):
        controller = AdaptiveProbeController(min_probes=6, max_probes=20)
        for _ in range(20):
            controller.update(self._estimate(0.0))
        floor = controller.n_probes
        controller.update(None)
        assert controller.n_probes > floor

    def test_small_jitter_ignored(self):
        controller = AdaptiveProbeController(
            min_probes=6, max_probes=20, motion_threshold_deg=5.0
        )
        for offset in (0.0, 2.0, -2.0, 1.0) * 10:
            controller.update(self._estimate(10.0 + offset))
        assert controller.n_probes == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveProbeController(min_probes=1, max_probes=0)
        with pytest.raises(ValueError):
            AdaptiveProbeController(motion_threshold_deg=0.0)


class TestSectorTracker:
    def _measure_factory(self, pattern_table, azimuth):
        def measure(sector_ids, rng):
            return [
                ProbeMeasurement(
                    s,
                    float(pattern_table.gain(s, azimuth, 0.0)),
                    float(pattern_table.gain(s, azimuth, 0.0)) - 71.5,
                )
                for s in sector_ids
            ]

        return measure

    def test_step_records_history(self, pattern_table, rng):
        tracker = SectorTracker(CompressiveSectorSelector(pattern_table), n_probes=12)
        measure = self._measure_factory(pattern_table, -20.0)
        step = tracker.step(measure, rng)
        assert len(step.probe_ids) == 12
        assert step.training_time_us == pytest.approx(12 * 36.0 + 49.1)
        assert tracker.history == [step]
        assert tracker.selections == [step.result.sector_id]

    def test_run_accumulates(self, pattern_table, rng):
        tracker = SectorTracker(CompressiveSectorSelector(pattern_table), n_probes=10)
        steps = tracker.run(self._measure_factory(pattern_table, 5.0), 5, rng)
        assert len(steps) == 5
        assert tracker.total_training_time_us == pytest.approx(5 * (10 * 36.0 + 49.1))

    def test_adaptive_budget_shrinks_on_static_scene(self, pattern_table, rng):
        controller = AdaptiveProbeController(min_probes=6, max_probes=18)
        tracker = SectorTracker(
            CompressiveSectorSelector(pattern_table), adaptive=controller
        )
        tracker.run(self._measure_factory(pattern_table, 0.0), 12, rng)
        assert len(tracker.history[0].probe_ids) == 18
        assert len(tracker.history[-1].probe_ids) < 18

    def test_budget_capped_by_candidates(self, pattern_table, rng):
        tracker = SectorTracker(CompressiveSectorSelector(pattern_table), n_probes=99)
        step = tracker.step(self._measure_factory(pattern_table, 0.0), rng)
        assert len(step.probe_ids) == 34
