"""Unit tests for the firmware measurement model (§5 quirks)."""

import numpy as np
import pytest

from repro.channel import MeasurementModel, quantize_to_step


class TestQuantize:
    def test_quarter_db(self):
        assert quantize_to_step(3.13, 0.25) == pytest.approx(3.25)
        assert quantize_to_step(-1.12, 0.25) == pytest.approx(-1.0)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            quantize_to_step(1.0, 0.0)


class TestMeasurementModel:
    def test_noiseless_is_pure_quantization(self, rng):
        model = MeasurementModel.noiseless()
        observation = model.observe(5.13, -71.5, rng)
        assert observation is not None
        assert observation.snr_db == pytest.approx(quantize_to_step(5.13, 0.25))

    def test_snr_clipped_to_reporting_window(self, rng):
        model = MeasurementModel.noiseless()
        high = model.observe(40.0, -71.5, rng)
        low = model.observe(-20.0, -71.5, rng)
        assert high.snr_db == 12.0
        # -20 dB is below the decode floor of the *default* model, but
        # the noiseless model never drops frames; the reading clips.
        assert low.snr_db == -7.0

    def test_readings_always_in_window(self, rng):
        model = MeasurementModel()
        for true_snr in np.linspace(-8, 30, 50):
            observation = model.observe(float(true_snr), -71.5, rng)
            if observation is not None:
                assert -7.0 <= observation.snr_db <= 12.0

    def test_quarter_db_grid(self, rng):
        model = MeasurementModel()
        for _ in range(50):
            observation = model.observe(5.0, -71.5, rng)
            if observation is not None:
                assert (observation.snr_db * 4) == pytest.approx(round(observation.snr_db * 4))

    def test_decode_probability_monotone(self):
        model = MeasurementModel()
        probabilities = [model.decode_probability(snr) for snr in (-15, -9, -5, 0, 10)]
        assert probabilities == sorted(probabilities)
        assert model.decode_probability(model.decode_threshold_db) == pytest.approx(0.5)

    def test_weak_frames_mostly_dropped(self, rng):
        model = MeasurementModel()
        received = sum(
            model.observe(-14.0, -71.5, rng) is not None for _ in range(300)
        )
        assert received < 60

    def test_strong_frames_mostly_reported(self, rng):
        model = MeasurementModel()
        received = sum(model.observe(10.0, -71.5, rng) is not None for _ in range(300))
        assert received > 250

    def test_report_dropout_even_when_decodable(self, rng):
        model = MeasurementModel(
            report_dropout_probability=0.5, decode_threshold_db=-1e9
        )
        received = sum(model.observe(10.0, -71.5, rng) is not None for _ in range(400))
        assert 120 < received < 280

    def test_rssi_tracks_snr_on_average(self, rng):
        model = MeasurementModel()
        noise_floor = -71.5
        readings = [model.observe(8.0, noise_floor, rng) for _ in range(400)]
        rssi = np.array([r.rssi_dbm for r in readings if r is not None])
        assert np.mean(rssi) == pytest.approx(8.0 + noise_floor, abs=1.0)

    def test_snr_and_rssi_fluctuate_independently(self, rng):
        """§5: outliers rarely hit both values of one report."""
        model = MeasurementModel(outlier_probability=0.3)
        both_outliers = 0
        singles = 0
        for _ in range(600):
            observation = model.observe(8.0, -71.5, rng)
            if observation is None:
                continue
            snr_off = abs(observation.snr_db - 8.0) > 4.0
            rssi_off = abs(observation.rssi_dbm - (-63.5)) > 4.0
            if snr_off and rssi_off:
                both_outliers += 1
            elif snr_off or rssi_off:
                singles += 1
        assert singles > both_outliers

    def test_low_snr_noisier_than_high_snr(self, rng):
        model = MeasurementModel(outlier_probability=0.0)
        low = [model.observe(-2.0, -71.5, rng) for _ in range(500)]
        high = [model.observe(10.0, -71.5, rng) for _ in range(500)]
        low_std = np.std([r.snr_db for r in low if r is not None])
        high_std = np.std([r.snr_db for r in high if r is not None])
        assert low_std > high_std

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasurementModel(snr_max_db=-10.0, snr_min_db=0.0)
        with pytest.raises(ValueError):
            MeasurementModel(report_dropout_probability=1.0)
        with pytest.raises(ValueError):
            MeasurementModel(outlier_probability=-0.1)


class TestObserveBatch:
    """The vectorized firmware-report kernel (stage-major draw order)."""

    def test_pinned_values_regression(self):
        """Frozen draw convention: these values must never change.

        The batched kernel regroups the RNG stream stage-major (all
        decode draws, then dropout, then noise, ...), so its outputs are
        a contract of their own — pinned here exactly as produced when
        the kernel landed.
        """
        model = MeasurementModel()
        rng = np.random.default_rng(20170815)
        batch = model.observe_batch(np.linspace(-6.0, 12.0, 10), -71.5, rng)
        assert batch.reported.tolist() == [
            False, True, True, True, True, True, True, True, True, True,
        ]
        expected_snr = [-2.0, 0.25, 8.25, 2.75, 3.5, 5.25, 8.0, 10.75, 12.0]
        expected_rssi = [-76.0, -73.0, -72.0, -68.0, -70.0, -65.0, -61.0, -62.0, -66.0]
        assert np.isnan(batch.snr_db[0]) and np.isnan(batch.rssi_dbm[0])
        assert batch.snr_db[1:].tolist() == expected_snr
        assert batch.rssi_dbm[1:].tolist() == expected_rssi
        assert len(batch) == 10

    def test_single_frame_matches_scalar_stream(self):
        """With one frame the stage-major order degenerates to the
        scalar order, so both paths consume the generator identically."""
        model = MeasurementModel()
        for seed in range(50):
            for true_snr in (-8.0, 0.0, 5.5, 11.0, 30.0):
                scalar = model.observe(true_snr, -71.5, np.random.default_rng(seed))
                batch = model.observe_batch(
                    np.array([true_snr]), -71.5, np.random.default_rng(seed)
                )
                if scalar is None:
                    assert not batch.reported[0]
                    assert np.isnan(batch.snr_db[0])
                else:
                    assert batch.reported[0]
                    assert batch.snr_db[0] == scalar.snr_db
                    assert batch.rssi_dbm[0] == scalar.rssi_dbm

    def test_deterministic_given_generator(self):
        model = MeasurementModel()
        values = np.linspace(-5.0, 12.0, 64)
        one = model.observe_batch(values, -71.5, np.random.default_rng(99))
        two = model.observe_batch(values, -71.5, np.random.default_rng(99))
        assert np.array_equal(one.reported, two.reported)
        assert np.array_equal(one.snr_db, two.snr_db, equal_nan=True)
        assert np.array_equal(one.rssi_dbm, two.rssi_dbm, equal_nan=True)

    def test_noiseless_batch_is_pure_quantization(self, rng):
        model = MeasurementModel.noiseless()
        values = np.array([5.13, -1.12, 3.0])
        batch = model.observe_batch(values, -71.5, rng)
        assert batch.reported.all()
        for reading, true_snr in zip(batch.snr_db, values):
            assert reading == pytest.approx(quantize_to_step(float(true_snr), 0.25))

    def test_readings_stay_in_reporting_window(self, rng):
        model = MeasurementModel()
        batch = model.observe_batch(np.linspace(-8.0, 30.0, 256), -71.5, rng)
        reported = batch.snr_db[batch.reported]
        assert ((reported >= -7.0) & (reported <= 12.0)).all()

    def test_rejects_non_1d_input(self, rng):
        model = MeasurementModel()
        with pytest.raises(ValueError):
            model.observe_batch(np.zeros((2, 3)), -71.5, rng)
