"""Figure 5: measured azimuth SNR patterns of all 35 sectors.

Regenerates the chamber campaign at elevation 0 across the full azimuth
circle and summarizes each sector the way the paper discusses them in
§4.4: peak gain and direction, plus the qualitative classes (strong
single lobe, multi-lobe, wide, weak, distorted behind the device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..measurement.campaign import PatternMeasurementCampaign, measure_azimuth_patterns
from ..measurement.patterns import PatternTable
from ..phased_array.talon import STRONG_SECTOR_IDS, WEAK_SECTOR_IDS
from .common import build_testbed

__all__ = ["Fig5Config", "Fig5Result", "run_fig5", "SectorSummary"]


@dataclass(frozen=True)
class Fig5Config:
    seed: int = 5
    azimuth_step_deg: float = 0.9  # the paper's rotation resolution
    n_sweeps: int = 3


@dataclass(frozen=True)
class SectorSummary:
    """One polar subplot of Figure 5, reduced to its headline facts."""

    sector_id: int
    peak_snr_db: float
    peak_azimuth_deg: float
    mean_snr_db: float
    n_lobes: int


@dataclass
class Fig5Result:
    table: PatternTable
    summaries: Dict[int, SectorSummary]

    def format_rows(self) -> List[str]:
        rows = [
            "fig5: azimuth patterns (chamber, elevation 0)",
            "sector | peak SNR @ azimuth | mean SNR | lobes",
        ]
        for sector_id, summary in sorted(self.summaries.items()):
            label = "RX" if sector_id == 0 else str(sector_id)
            rows.append(
                f"{label:>6s} | {summary.peak_snr_db:5.1f} dB @ {summary.peak_azimuth_deg:7.1f} | "
                f"{summary.mean_snr_db:6.1f} | {summary.n_lobes}"
            )
        return rows


def count_lobes(pattern_db: np.ndarray, prominence_db: float = 3.0) -> int:
    """Number of distinct lobes within ``prominence_db`` of the peak."""
    values = np.asarray(pattern_db, dtype=float)
    threshold = values.max() - prominence_db
    above = values >= threshold
    # Count runs of above-threshold samples on the circular axis.
    transitions = np.sum(above & ~np.roll(above, 1))
    return max(int(transitions), 1) if above.any() else 0


def run_fig5(config: Fig5Config = Fig5Config()) -> Fig5Result:
    """Run the Figure 5 campaign and summarize every sector."""
    testbed = build_testbed()
    rng = np.random.default_rng(config.seed)
    campaign = PatternMeasurementCampaign(
        testbed.dut_antenna,
        testbed.dut_codebook,
        reference_antenna=testbed.ref_antenna,
        reference_codebook=testbed.ref_codebook,
        budget=testbed.budget,
        measurement_model=testbed.measurement_model,
    )
    table = measure_azimuth_patterns(
        campaign, rng, azimuth_step_deg=config.azimuth_step_deg, n_sweeps=config.n_sweeps
    )
    summaries: Dict[int, SectorSummary] = {}
    for sector_id in table.sector_ids:
        pattern = table.pattern(sector_id)[0]  # single elevation row
        peak_index = int(np.argmax(pattern))
        summaries[sector_id] = SectorSummary(
            sector_id=sector_id,
            peak_snr_db=float(pattern[peak_index]),
            peak_azimuth_deg=float(table.grid.azimuths_deg[peak_index]),
            mean_snr_db=float(np.mean(pattern)),
            n_lobes=count_lobes(pattern),
        )
    return Fig5Result(table=table, summaries=summaries)
