"""Beamforming weight vectors with hardware-style quantization.

Low-cost 802.11ad front-ends (like the QCA9500) do not apply arbitrary
complex weights: each element has a coarse phase shifter (typically
2 bits, i.e. steps of 90°) and an on/off or few-step amplitude control.
:class:`WeightVector` models an ideal complex weight vector together
with the quantized version the hardware actually applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["quantize_phase", "WeightVector"]


def quantize_phase(phase_rad: np.ndarray, phase_bits: int) -> np.ndarray:
    """Snap phases to the nearest of ``2**phase_bits`` uniform steps.

    Quantization is performed on the principal value, so the result
    lies on the canonical constellation ``{0, Δ, 2Δ, ...}`` with
    ``Δ = 2π / 2**bits``.
    """
    if phase_bits < 1:
        raise ValueError("phase_bits must be >= 1")
    n_levels = 2**phase_bits
    step = 2.0 * np.pi / n_levels
    return np.round(np.asarray(phase_rad, dtype=float) / step) * step


@dataclass(frozen=True)
class WeightVector:
    """Per-element complex beamforming weights.

    Attributes:
        weights: complex array of shape ``(n_elements,)``.  A zero
            weight means the element is switched off.
    """

    weights: np.ndarray

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=complex)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        object.__setattr__(self, "weights", weights)

    @property
    def n_elements(self) -> int:
        return self.weights.size

    @property
    def active_elements(self) -> np.ndarray:
        """Boolean mask of elements with non-zero amplitude."""
        return np.abs(self.weights) > 1e-12

    @classmethod
    def uniform(cls, n_elements: int) -> "WeightVector":
        """All elements on with equal phase."""
        return cls(np.ones(n_elements, dtype=complex))

    @classmethod
    def conjugate_steering(cls, steering: np.ndarray) -> "WeightVector":
        """Ideal beamformer that aligns a given steering vector."""
        return cls(np.conj(np.asarray(steering, dtype=complex)))

    def quantized(self, phase_bits: int = 2, amplitude_on_off: bool = True) -> "WeightVector":
        """Hardware-feasible version of this weight vector.

        Phases snap to ``2**phase_bits`` levels; amplitudes collapse to
        on/off (elements below 10 % of the max amplitude switch off)
        when ``amplitude_on_off`` is set.
        """
        amplitudes = np.abs(self.weights)
        phases = quantize_phase(np.angle(self.weights), phase_bits)
        if amplitude_on_off:
            threshold = 0.1 * np.max(amplitudes) if np.max(amplitudes) > 0 else 0.0
            amplitudes = np.where(amplitudes > threshold, 1.0, 0.0)
        return WeightVector(amplitudes * np.exp(1j * phases))

    def normalized(self) -> "WeightVector":
        """Scale to unit total power (``||w|| = 1``).

        Keeping total weight power constant across sectors models a
        fixed transmit-power budget split over the active elements.
        """
        norm = np.linalg.norm(self.weights)
        if norm < 1e-12:
            raise ValueError("cannot normalize an all-zero weight vector")
        return WeightVector(self.weights / norm)

    def with_element_mask(self, active: np.ndarray) -> "WeightVector":
        """Zero out the weights of inactive elements."""
        active = np.asarray(active, dtype=bool)
        if active.shape != (self.n_elements,):
            raise ValueError("mask shape must match the number of elements")
        return WeightVector(np.where(active, self.weights, 0.0))
