#!/usr/bin/env python3
"""Dense deployments: why shorter sweeps matter (paper §7 discussion).

"Each sector sweep performed by a pair of nodes pollutes the whole
mm-wave channel in all directions."  With many stations per room, the
quasi-omni SSW frames of every pair cost airtime on the shared medium.
This example scales the number of node pairs and compares the medium
time burned on training by the exhaustive sweep vs. compressive
selection, plus the sweep frequency each could afford at a fixed
training budget.

Run:  python examples/dense_deployment.py
"""

from repro.mac.timing import (
    N_FULL_SWEEP_SECTORS,
    SWEEP_INTERVAL_US,
    mutual_training_time_us,
)

CSS_PROBES = 14
TRAINING_BUDGET = 0.02  # at most 2 % of airtime spent on training


def main() -> None:
    ssw_time = mutual_training_time_us(N_FULL_SWEEP_SECTORS)
    css_time = mutual_training_time_us(CSS_PROBES)

    print(f"one mutual training: SSW {ssw_time / 1000:.2f} ms, "
          f"CSS {css_time / 1000:.2f} ms")
    print(f"\npairs | training airtime per second (channel-wide)")
    print(f"      |      SSW       CSS    (sweep every "
          f"{SWEEP_INTERVAL_US / 1e6:.0f} s per pair)")
    for n_pairs in (1, 2, 5, 10, 20, 50):
        sweeps_per_second = n_pairs * 1e6 / SWEEP_INTERVAL_US
        ssw_share = sweeps_per_second * ssw_time / 1e6
        css_share = sweeps_per_second * css_time / 1e6
        print(f"{n_pairs:5d} | {100 * ssw_share:7.2f} %  {100 * css_share:7.2f} %")

    print(f"\nmax re-training rate within a {100 * TRAINING_BUDGET:.0f}% "
          f"training budget (mobility support):")
    for n_pairs in (1, 5, 10, 20):
        ssw_rate = TRAINING_BUDGET * 1e6 / (ssw_time * n_pairs)
        css_rate = TRAINING_BUDGET * 1e6 / (css_time * n_pairs)
        print(f"{n_pairs:5d} pairs: SSW {ssw_rate:6.1f} Hz, CSS {css_rate:6.1f} Hz "
              f"({css_rate / ssw_rate:.1f}x more frequent tracking)")


if __name__ == "__main__":
    main()
