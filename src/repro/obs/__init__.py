"""`repro.obs` — the run-wide observability layer (DESIGN.md §10).

One :class:`ObsSession` bundles a span tracer (:mod:`.trace`) and a
metrics registry (:mod:`.metrics`) for one process.  Instrumented code
never holds a session: it calls the module-level helpers —
:func:`span`, :func:`event`, :func:`inc`, :func:`observe`,
:func:`set_gauge` — which dispatch to the *active* session or, when
none is active (the default), do nothing.  The disabled path is one
global read and an early return, cheap enough to leave instrumentation
always-on in hot kernels; ``repro-bench perf --check`` gates the
runner-level cost (``runner_obs_overhead_pct``).

Activation is explicit and scoped: :meth:`ScenarioRunner.run`
activates its session for the duration of the run and restores the
previous one after — nested or sequential runs can't leak spans into
each other.  Pool workers activate a fresh per-block session and ship
its drained payload back piggybacked on the block result; the runner
absorbs worker payloads in deterministic block order (see
:meth:`ObsSession.absorb_payload`).

:func:`logging_setup` is the one place CLI logging is configured
(``--log-level`` flag, ``REPRO_LOG_LEVEL`` env var); every existing
``logging.getLogger(__name__)`` call site keeps working unchanged.
"""

from __future__ import annotations

import logging
import os
from contextvars import ContextVar
from typing import Any, Dict, List, Mapping, Optional

from .metrics import MetricsRegistry
from .trace import (
    NULL_SPAN,
    RotatingTraceWriter,
    TraceRecorder,
    read_trace_jsonl,
    write_trace_jsonl,
)

__all__ = [
    "ObsSession",
    "activate",
    "deactivate",
    "active_session",
    "enabled",
    "span",
    "event",
    "inc",
    "observe",
    "set_gauge",
    "logging_setup",
    "read_trace_jsonl",
    "write_trace_jsonl",
    "RotatingTraceWriter",
]


class ObsSession:
    """Tracer + metrics registry for one process (or one run).

    Args:
        trace_path: optional JSONL sink; :meth:`finalize` writes the
            accumulated trace there (the ``--trace out.jsonl`` flag).
        quality: enable estimation-quality telemetry (:mod:`.quality`)
            for runs under this session.  Off by default — the seams
            then cost one ContextVar read, keeping untelemetered runs
            inside the obs overhead budget and bit-identical.
    """

    def __init__(self, trace_path=None, quality: bool = False):
        self.tracer = TraceRecorder()
        self.metrics = MetricsRegistry()
        self.trace_path = trace_path
        self.quality = bool(quality)

    # -- cross-process shipping -----------------------------------------

    def drain_payload(self) -> Dict[str, Any]:
        """Detach everything recorded so far (worker → runner shipping).

        When the process-wide sampling profiler is running, its
        collapsed-stack aggregate rides along under ``"profile"`` —
        the same channel as trace buffers, so worker profiles reach
        the supervisor without a side path.  The key is absent when
        profiling is off, keeping the payload shape unchanged.
        """
        payload: Dict[str, Any] = {
            "events": self.tracer.drain(),
            "metrics": self.metrics.snapshot(),
        }
        from .profile import drain_profile

        profile = drain_profile()
        if profile is not None:
            payload["profile"] = profile
        return payload

    def absorb_payload(
        self,
        payload: Mapping[str, Any],
        parent_id: Optional[str],
        prefix: str,
    ) -> None:
        """Fold a worker's drained payload into this session.

        Callers must absorb in a deterministic order — the runner keys
        payloads by ``(execute call, block index)`` exactly like the
        checkpoint journal — so merged traces and metric snapshots are
        reproducible regardless of pool scheduling.  (Profile sample
        merges are commutative sums, so they are order-independent
        regardless.)
        """
        self.tracer.absorb(payload.get("events", ()), parent_id, prefix)
        self.metrics.merge(payload.get("metrics", {}))
        if "profile" in payload:
            from .profile import merge_profile

            merge_profile(payload["profile"])

    # -- lifecycle ------------------------------------------------------

    def reset(self) -> None:
        """Start a fresh trace/metric window (one per ``run()``)."""
        self.tracer.reset()
        self.metrics.reset()

    def finalize(self, header: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Roll up the window into a manifest ``observability`` section.

        Writes the trace JSONL when a sink path is configured.  The
        event buffer is left intact so callers (tests, the CLI) can
        still inspect it; the next :meth:`reset` clears it.
        """
        from .report import span_rollup

        rollup = span_rollup(self.tracer.events)
        if self.trace_path is not None:
            write_trace_jsonl(self.trace_path, self.tracer.events, header=header)
        section: Dict[str, Any] = {"enabled": True}
        section.update(rollup)
        section["metrics"] = self.metrics.snapshot()
        from .profile import active_sampler, profile_summary

        sampler = active_sampler()
        if sampler is not None:
            # Hotspot summary only — full collapsed stacks go to the
            # profiler's own artifact, not the manifest.  Profile
            # counts are wall-clock facts and exist only when the user
            # explicitly turned profiling on, so determinism pins are
            # untouched.
            section["profile"] = profile_summary(sampler.snapshot())
        return section


#: The active session, or None when observability is off (the default).
#: A :class:`~contextvars.ContextVar` rather than a module global: the
#: service front-end runs many ScenarioRunners concurrently (one thread
#: per in-flight request), and a plain global would interleave every
#: request's spans and counters into whichever session activated last.
#: Context variables are per-thread *and* per-asyncio-task, so each
#: request's activation is invisible to its neighbours while the
#: single-process CLI behaves exactly as before.
_SESSION: ContextVar[Optional[ObsSession]] = ContextVar(
    "repro_obs_session", default=None
)


def activate(session: Optional[ObsSession]) -> Optional[ObsSession]:
    """Make ``session`` current; returns the previous one for restore."""
    previous = _SESSION.get()
    _SESSION.set(session)
    return previous


def deactivate(previous: Optional[ObsSession] = None) -> None:
    """Restore a previously active session (or none)."""
    _SESSION.set(previous)


def active_session() -> Optional[ObsSession]:
    return _SESSION.get()


def enabled() -> bool:
    """Is an observability session currently active?"""
    return _SESSION.get() is not None


# -- instrumentation face (no-ops when no session is active) ------------


def span(name: str, **attrs: Any):
    """A context-managed span under the active tracer (or a no-op)."""
    session = _SESSION.get()
    if session is None:
        return NULL_SPAN
    return session.tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """A point event under the active tracer (or nothing)."""
    session = _SESSION.get()
    if session is not None:
        session.tracer.event(name, **attrs)


def inc(name: str, value: float = 1, **labels: Any) -> None:
    """Bump a counter on the active registry (or nothing)."""
    session = _SESSION.get()
    if session is not None:
        session.metrics.inc(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record a histogram observation on the active registry."""
    session = _SESSION.get()
    if session is not None:
        session.metrics.observe(name, value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge on the active registry (or nothing)."""
    session = _SESSION.get()
    if session is not None:
        session.metrics.set_gauge(name, value, **labels)


# -- logging ------------------------------------------------------------

#: Environment variable consulted when no explicit level is passed.
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"


def logging_setup(level: Optional[str] = None) -> int:
    """Configure root logging once for the whole ``repro`` tree.

    Resolution order: explicit ``level`` argument (the CLI's
    ``--log-level``), then the ``REPRO_LOG_LEVEL`` environment
    variable, then ``WARNING``.  Existing per-module
    ``logging.getLogger(__name__)`` call sites keep working — this
    only installs a root handler and sets the ``repro`` logger level.

    Returns the numeric level that was applied.

    Raises:
        ValueError: the level name is not a known logging level.
    """
    name = level if level is not None else os.environ.get(LOG_LEVEL_ENV)
    if name is None:
        name = "WARNING"
    numeric = logging.getLevelName(str(name).upper())
    if not isinstance(numeric, int):
        raise ValueError(
            f"unknown log level '{name}' (use debug, info, warning, error or critical)"
        )
    logging.basicConfig(
        level=numeric, format="%(asctime)s %(levelname)s %(name)s: %(message)s"
    )
    # basicConfig is a no-op when a handler already exists (pytest,
    # embedding apps); setting the package logger level still applies.
    logging.getLogger("repro").setLevel(numeric)
    return numeric
