"""Tests for the baseline algorithms."""

import numpy as np
import pytest

from repro.baselines import (
    HierarchicalSearch,
    OracleSelector,
    random_beam_codebook,
    theoretical_pattern_table,
)
from repro.core import ProbeMeasurement
from repro.geometry import AngularGrid
from repro.measurement.patterns import PatternTable


class TestOracle:
    def test_picks_true_best(self):
        oracle = OracleSelector([3, 7, 9])
        result = oracle.select_from_truth(np.array([1.0, 5.0, 2.0]))
        assert result.sector_id == 7
        assert oracle.best_snr_db(np.array([1.0, 5.0, 2.0])) == 5.0

    def test_shape_validated(self):
        oracle = OracleSelector([1, 2])
        with pytest.raises(
            ValueError,
            match=r"truth vector shape \(3,\) does not match the candidate "
            r"set shape \(2,\)",
        ):
            oracle.select_from_truth(np.zeros(3))

    def test_needs_candidates(self):
        with pytest.raises(ValueError):
            OracleSelector([])


class TestHierarchicalSearch:
    def _measure_factory(self, pattern_table, azimuth):
        def measure(sector_ids, rng):
            return [
                ProbeMeasurement(
                    s,
                    float(pattern_table.gain(s, azimuth, 0.0)),
                    float(pattern_table.gain(s, azimuth, 0.0)) - 71.5,
                )
                for s in sector_ids
            ]

        return measure

    def test_groups_partition_tx_sectors(self, pattern_table):
        search = HierarchicalSearch(pattern_table, n_groups=6)
        members = [m for group in search.groups.values() for m in group]
        tx_ids = [s for s in pattern_table.sector_ids if s != 0]
        assert sorted(members) == sorted(tx_ids)
        for representative, group in search.groups.items():
            assert representative in group

    def test_two_rounds_fewer_probes_than_full_sweep(self, pattern_table, rng):
        search = HierarchicalSearch(pattern_table, n_groups=6)
        outcome = search.run(self._measure_factory(pattern_table, -20.0), rng)
        assert outcome.n_rounds == 2
        assert outcome.probes_used < 34

    def test_finds_reasonable_sector(self, pattern_table, rng):
        search = HierarchicalSearch(pattern_table, n_groups=6)
        truth = 15.0
        outcome = search.run(self._measure_factory(pattern_table, truth), rng)
        chosen_gain = pattern_table.gain(outcome.result.sector_id, truth, 0.0)
        best_gain = max(
            pattern_table.gain(s, truth, 0.0)
            for s in pattern_table.sector_ids
            if s != 0
        )
        assert chosen_gain >= best_gain - 4.0

    def test_training_time_includes_double_feedback(self, pattern_table, rng):
        search = HierarchicalSearch(pattern_table, n_groups=6)
        outcome = search.run(self._measure_factory(pattern_table, 0.0), rng)
        expected = 2.0 * outcome.probes_used * 18.0 + 2 * 49.1
        assert outcome.training_time_us == pytest.approx(expected)

    def test_empty_first_round_falls_back(self, pattern_table, rng):
        search = HierarchicalSearch(pattern_table, n_groups=4)
        outcome = search.run(lambda ids, generator: [], rng)
        assert outcome.result.fallback
        assert outcome.n_rounds == 1

    def test_validation(self, pattern_table):
        with pytest.raises(ValueError):
            HierarchicalSearch(pattern_table, n_groups=1)
        with pytest.raises(ValueError):
            HierarchicalSearch(pattern_table, n_groups=99)

    def test_reset_restores_initial_selection(self, pattern_table, rng):
        search = HierarchicalSearch(pattern_table, n_groups=4)
        search.run(self._measure_factory(pattern_table, 30.0), rng)
        search.reset()
        outcome = search.run(lambda ids, generator: [], rng)
        assert outcome.result.sector_id == search.initial_selection


def _synthetic_table(peaks_and_means):
    """A tiny measured table: sector -> (peak azimuth, mean gain).

    One elevation row, three azimuth columns at -30/0/30; the peak cell
    gets ``mean*3`` so both the clustering key (peak azimuth) and the
    representative key (mean gain) are controlled exactly.
    """
    grid = AngularGrid(np.array([-30.0, 0.0, 30.0]), np.array([0.0]))
    patterns = {}
    for sector_id, (peak_azimuth, mean_gain) in peaks_and_means.items():
        row = np.zeros((1, 3))
        row[0, list(grid.azimuths_deg).index(peak_azimuth)] = 3.0 * mean_gain
        patterns[sector_id] = row
    return PatternTable(grid, patterns)


class TestHierarchicalEdgeCases:
    def _measure_flat(self, snr_by_sector):
        def measure(sector_ids, rng):
            return [
                ProbeMeasurement(s, snr_by_sector[s], snr_by_sector[s] - 71.5)
                for s in sector_ids
            ]

        return measure

    def test_minimal_codebook_single_member_clusters(self, rng):
        """Two sectors, two groups: every cluster is a lone sector."""
        table = _synthetic_table({1: (-30.0, 5.0), 2: (30.0, 4.0)})
        search = HierarchicalSearch(table, n_groups=2)
        assert sorted(search.groups.items()) == [(1, [1]), (2, [2])]
        outcome = search.run(self._measure_flat({1: 3.0, 2: 9.0}), rng)
        assert outcome.result.sector_id == 2
        assert outcome.n_rounds == 2
        # Both rounds probe real sectors: 2 representatives + the
        # winning singleton's sole member.
        assert outcome.probes_used == 3

    def test_uneven_split_keeps_singleton_cluster(self, rng):
        """Three sectors in two groups: one cluster has exactly one member."""
        table = _synthetic_table({1: (-30.0, 5.0), 2: (0.0, 9.0), 3: (30.0, 4.0)})
        search = HierarchicalSearch(table, n_groups=2)
        groups = {rep: sorted(members) for rep, members in search.groups.items()}
        assert groups == {2: [1, 2], 3: [3]}
        outcome = search.run(self._measure_flat({1: 1.0, 2: 2.0, 3: 8.0}), rng)
        assert outcome.result.sector_id == 3
        assert outcome.probes_used == 3  # 2 representatives + 1 member

    def test_representative_tie_breaks_to_first_measurement(self, rng):
        """Equal representative SNRs: Python max keeps the first, so the
        first-listed cluster wins the refinement round deterministically."""
        table = _synthetic_table(
            {1: (-30.0, 5.0), 2: (-30.0, 1.0), 3: (30.0, 6.0), 4: (30.0, 2.0)}
        )
        search = HierarchicalSearch(table, n_groups=2)
        assert list(search.groups) == [1, 3]
        probed_rounds = []

        def measure(sector_ids, generator):
            probed_rounds.append(list(sector_ids))
            return [ProbeMeasurement(s, 4.0, -67.5) for s in sector_ids]

        outcome = search.run(measure, rng)
        # The tie between representatives 1 and 3 resolves to 1 (first
        # measured), so round two probes cluster {1, 2}; the member tie
        # then resolves to sector 1 again.
        assert probed_rounds == [[1, 3], [1, 2]]
        assert outcome.result.sector_id == 1


class TestRandomBeams:
    def test_codebook_shape(self, antenna, rng):
        codebook = random_beam_codebook(antenna, 12, rng)
        assert codebook.n_tx_sectors == 12
        assert codebook.rx_sector_id == 0
        assert all(32 <= s <= 60 for s in codebook.tx_sector_ids)

    def test_all_elements_active(self, antenna, rng):
        codebook = random_beam_codebook(antenna, 4, rng)
        for sector_id in codebook.tx_sector_ids:
            assert codebook[sector_id].weights.active_elements.all()

    def test_count_validated(self, antenna, rng):
        with pytest.raises(ValueError):
            random_beam_codebook(antenna, 0, rng)
        with pytest.raises(ValueError):
            random_beam_codebook(antenna, 30, rng)

    def test_random_beams_lose_peak_gain(self, antenna, codebook, rng):
        """§2.1: random phases forgo the beamforming gain."""
        random_cb = random_beam_codebook(antenna, 10, rng)
        azimuths = np.linspace(-60, 60, 61)
        random_peak = max(
            antenna.gain_db(random_cb[s].weights, azimuths, 0.0).max()
            for s in random_cb.tx_sector_ids
        )
        tuned_peak = antenna.gain_db(codebook[63].weights, azimuths, 0.0).max()
        assert tuned_peak > random_peak + 3.0


class TestTheoreticalPatterns:
    def test_covers_codebook_on_grid(self, codebook, antenna):
        grid = AngularGrid(np.arange(-30.0, 31.0, 10.0), np.array([0.0]))
        table = theoretical_pattern_table(codebook, grid, antenna=antenna)
        assert set(table.sector_ids) == set(codebook.sector_ids)
        assert table.pattern(63).shape == grid.shape

    def test_ignores_hardware_impairments(self, codebook, antenna):
        """Theory assumes a perfect front-end — no chassis blockage."""
        grid = AngularGrid(np.array([-170.0, 0.0, 170.0]), np.array([0.0]))
        table = theoretical_pattern_table(codebook, grid, antenna=antenna)
        theoretical_back = table.gain(63, 170.0, 0.0)
        measured_back = antenna.gain_db(codebook[63].weights, 170.0, 0.0) - 6.0
        assert theoretical_back > measured_back  # blockage missing from theory
