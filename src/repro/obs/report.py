"""Rendering: turn a trace or a manifest into a latency breakdown.

``repro-bench report <target>`` accepts either artefact a traced run
leaves behind — the raw ``trace.jsonl`` or the run manifest (whose
``observability`` section embeds the same rollup) — and prints a
per-policy / per-stage latency table plus the top-N slowest blocks.
The rollup itself (:func:`span_rollup`) is also what the runner embeds
into the manifest, so both paths render from one structure.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .trace import read_trace_jsonl

__all__ = ["span_rollup", "format_report_rows", "report_rows", "load_report_target"]

#: How many slowest blocks a rollup retains (and the report prints).
TOP_BLOCKS = 5


def span_rollup(
    events: Sequence[Mapping[str, Any]], top: int = TOP_BLOCKS
) -> Dict[str, Any]:
    """Aggregate span records into per-stage and per-policy timings.

    Returns ``{"spans": {name: {count,total_s,max_s}}, "policies":
    {policy: {...}} (execute.block only), "slowest_blocks": [...]}`` —
    the manifest's ``observability`` timing rollup.
    """
    stages: Dict[str, Dict[str, Any]] = {}
    policies: Dict[str, Dict[str, Any]] = {}
    blocks: List[Dict[str, Any]] = []
    for event in events:
        if event.get("type") != "span":
            continue
        duration = float(event.get("duration_s", 0.0))
        _fold(stages, str(event["name"]), duration)
        if event["name"] != "execute.block":
            continue
        attrs = event.get("attrs", {})
        policy = str(attrs.get("policy", "?"))
        _fold(policies, policy, duration)
        blocks.append(
            {
                "policy": policy,
                "call": attrs.get("call"),
                "block": attrs.get("block"),
                "duration_s": duration,
            }
        )
    blocks.sort(key=lambda entry: (-entry["duration_s"], str(entry["policy"])))
    return {
        "spans": {name: stages[name] for name in sorted(stages)},
        "policies": {name: policies[name] for name in sorted(policies)},
        "slowest_blocks": blocks[: max(top, 0)],
    }


def _fold(table: Dict[str, Dict[str, Any]], key: str, duration: float) -> None:
    entry = table.get(key)
    if entry is None:
        table[key] = {"count": 1, "total_s": duration, "max_s": duration}
    else:
        entry["count"] += 1
        entry["total_s"] += duration
        entry["max_s"] = max(entry["max_s"], duration)


def load_report_target(path) -> Dict[str, Any]:
    """Load a trace JSONL or a manifest JSON into one report payload.

    Returns ``{"source", "identity", "rollup", "metrics"}``.

    Raises:
        ValueError: the file is neither a trace nor a traced manifest.
    """
    path = Path(path)
    try:
        header, events = read_trace_jsonl(path)
    except ValueError:
        header, events = None, None
    if events is not None:
        return {
            "source": "trace",
            "identity": {
                key: header[key]
                for key in ("scenario", "spec_digest", "seed", "jobs")
                if key in header
            },
            "rollup": span_rollup(events),
            "metrics": None,
        }
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"'{path}' is neither a trace nor a manifest: {error}") from None
    observability = manifest.get("observability") if isinstance(manifest, dict) else None
    if not isinstance(observability, dict) or not observability.get("enabled"):
        raise ValueError(
            f"'{path}' carries no observability section — rerun with --trace"
        )
    return {
        "source": "manifest",
        "identity": {
            key: manifest[key]
            for key in ("scenario", "spec_digest", "seed", "jobs")
            if key in manifest
        },
        "rollup": {
            "spans": observability.get("spans", {}),
            "policies": observability.get("policies", {}),
            "slowest_blocks": observability.get("slowest_blocks", []),
        },
        "metrics": observability.get("metrics"),
        "profile": observability.get("profile"),
    }


def format_report_rows(payload: Mapping[str, Any], top: int = TOP_BLOCKS) -> List[str]:
    """Human-readable latency breakdown of one loaded report payload."""
    identity = payload.get("identity", {})
    rollup = payload.get("rollup", {})
    rows = [
        "report: per-stage latency breakdown"
        + (f" ({payload.get('source')})" if payload.get("source") else "")
    ]
    if identity:
        digest = str(identity.get("spec_digest", ""))[:16]
        rows.append(
            f"  run scenario={identity.get('scenario', '?')}"
            f" seed={identity.get('seed', '?')} jobs={identity.get('jobs', '?')}"
            + (f" spec {digest}…" if digest else "")
        )
    spans = rollup.get("spans", {})
    if spans:
        rows.append("  stage                     count    total s     mean ms      max ms")
        for name in sorted(spans):
            entry = spans[name]
            count = int(entry["count"])
            total = float(entry["total_s"])
            mean_ms = 1e3 * total / count if count else 0.0
            rows.append(
                f"  {name:24s} {count:6d} {total:10.3f} {mean_ms:11.3f}"
                f" {1e3 * float(entry['max_s']):11.3f}"
            )
    else:
        rows.append("  (no spans recorded)")
    policies = rollup.get("policies", {})
    if policies:
        rows.append("  policy blocks             count    total s     mean ms      max ms")
        for name in sorted(policies):
            entry = policies[name]
            count = int(entry["count"])
            total = float(entry["total_s"])
            mean_ms = 1e3 * total / count if count else 0.0
            rows.append(
                f"  {name:24s} {count:6d} {total:10.3f} {mean_ms:11.3f}"
                f" {1e3 * float(entry['max_s']):11.3f}"
            )
    slowest = rollup.get("slowest_blocks", [])[: max(top, 0)]
    if slowest:
        rows.append(f"  top {len(slowest)} slowest blocks")
        for entry in slowest:
            rows.append(
                f"    {entry.get('policy', '?'):16s}"
                f" call={entry.get('call', '?')} block={entry.get('block', '?')}"
                f"  {1e3 * float(entry.get('duration_s', 0.0)):9.3f} ms"
            )
    profile = payload.get("profile")
    if profile and profile.get("hotspots"):
        rows.append(
            f"  profile hotspots ({int(profile.get('samples', 0))} samples,"
            " self-time ranked)"
        )
        rows.append("    function                                          self    self %")
        for entry in profile["hotspots"][: max(top, 0) or None]:
            rows.append(
                f"    {str(entry.get('function', '?')):<46}"
                f" {int(entry.get('self', 0)):7d} {float(entry.get('self_pct', 0.0)):8.1f}"
            )
    return rows


def report_rows(path, top: int = TOP_BLOCKS) -> List[str]:
    """One-call convenience: load ``path`` and format the report."""
    return format_report_rows(load_report_target(path), top=top)
