"""Tests for the ``repro.runtime`` engine: specs, registry, runner.

The headline acceptance test lives in ``TestToyPolicyEndToEnd``: a
brand-new policy registered here — without editing a single module
under ``experiments/`` — runs head-to-head against the built-ins via
``policy-eval``, both through the Python API and through
``repro-bench run`` with a spec JSON file.
"""

import json
import warnings

import numpy as np
import pytest

from repro.baselines.hierarchical import HierarchicalSearch
from repro.channel.environment import conference_room
from repro.core import ProbeMeasurement
from repro.core.selector import SelectionResult
from repro.experiments.common import build_testbed, record_directions
from repro.runtime import (
    PolicyContext,
    PolicySpec,
    ScenarioRunner,
    ScenarioSpec,
    available_policies,
    available_scenarios,
    build_policy,
    register_policy,
    scenario_spec,
)
from repro.runtime import TestbedSpec as _TestbedSpec  # alias: not a test class


class TestScenarioSpec:
    def _spec(self):
        return ScenarioSpec(
            scenario="fig9",
            seed=5,
            policies=(PolicySpec("css", {"n_probes": 10}),),
            params={"azimuth_step_deg": 20.0},
        )

    def test_json_round_trip(self):
        spec = self._spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_save_load_round_trip(self, tmp_path):
        spec = self._spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ScenarioSpec.load(path) == spec

    def test_digest_is_stable_and_sensitive(self):
        spec = self._spec()
        assert spec.digest() == self._spec().digest()
        assert spec.digest() != spec.with_seed(6).digest()

    def test_with_seed(self):
        spec = self._spec()
        assert spec.with_seed(None) is spec
        reseeded = spec.with_seed(42)
        assert reseeded.seed == 42
        assert reseeded.params == spec.params

    def test_testbed_spec_defaults_build_the_shared_testbed(self):
        # Memoized per spec, and content-identical to the default build
        # (the disk-memoized campaign makes both deterministic).
        built = _TestbedSpec().build()
        assert built is _TestbedSpec().build()
        default = build_testbed()
        assert built.tx_sector_ids == default.tx_sector_ids
        assert np.array_equal(
            built.pattern_table.pattern(1), default.pattern_table.pattern(1)
        )


class TestRegistry:
    def test_builtin_policies_present(self):
        assert {"css", "full-sweep", "hierarchical", "oracle", "random-beams"} <= set(
            available_policies()
        )

    def test_builtin_scenarios_present(self):
        assert {"fig7", "fig8", "fig9", "fig10", "fig11", "policy-eval"} <= set(
            available_scenarios()
        )

    def test_unknown_names_raise_with_inventory(self):
        context = PolicyContext(testbed=None)
        with pytest.raises(KeyError, match="unknown policy 'nope'"):
            build_policy(PolicySpec("nope"), context)
        with pytest.raises(KeyError, match="unknown scenario 'nope'"):
            scenario_spec("nope")

    def test_default_spec_lookup(self):
        spec = scenario_spec("fig9")
        assert spec.scenario == "fig9"
        assert spec.testbed == _TestbedSpec()


@register_policy("toy-loudest")
class ToyLoudestPolicy:
    """Probe the first ``n_probes`` sectors, keep the loudest one."""

    multi_round = False

    def __init__(self, context, n_probes=8):
        self.name = "toy-loudest"
        self.n_probes = int(n_probes)
        self._last = None

    def reset(self):
        self._last = None

    def probes_for_round(self, round_index, pool, rng):
        if round_index > 0:
            return None
        return list(pool)[: self.n_probes]

    def select(self, measurements):
        if not measurements:
            return SelectionResult(sector_id=self._last or 1, fallback=True)
        best = max(measurements, key=lambda m: m.snr_db)
        self._last = best.sector_id
        return SelectionResult(sector_id=best.sector_id)

    def training_time_us(self, probes_used, n_rounds=1):
        return 2.0 * probes_used * 18.0 + n_rounds * 49.1


class TestToyPolicyEndToEnd:
    def _spec(self):
        return ScenarioSpec(
            scenario="policy-eval",
            seed=3,
            policies=(
                PolicySpec("toy-loudest", {"n_probes": 6}),
                PolicySpec("full-sweep", {}),
            ),
            params={"azimuth_step_deg": 40.0, "n_sweeps": 2},
        )

    def test_runs_against_builtins_without_touching_experiments(self):
        with ScenarioRunner() as runner:
            outcome = runner.run(self._spec())
        rows = outcome.result.by_policy()
        assert set(rows) == {"toy-loudest", "full-sweep"}
        toy = rows["toy-loudest"]
        assert toy.mean_training_time_us > 0
        assert 0.0 <= toy.stability <= 1.0
        # Probing 6 fixed sectors can't beat the exhaustive sweep.
        assert toy.mean_loss_db >= rows["full-sweep"].mean_loss_db
        assert "toy-loudest" in outcome.manifest.policy_timings_s

    def test_runs_through_the_cli_from_a_spec_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "toy.json"
        self._spec().save(path)
        assert main(["run", str(path)]) == 0
        output = capsys.readouterr().out
        assert "toy-loudest" in output
        assert "manifest: scenario=policy-eval" in output


class TestExecuteBatchScalarIdentity:
    class _ScalarOnly:
        """Proxy hiding ``select_batch`` to force the scalar fallback."""

        def __init__(self, inner):
            object.__setattr__(self, "_inner", inner)

        def __getattr__(self, name):
            if name == "select_batch":
                raise AttributeError(name)
            return getattr(self._inner, name)

    def test_fallback_path_matches_batched_path(self):
        testbed = build_testbed()
        with ScenarioRunner() as runner:
            context = runner.context(testbed)
            policy = build_policy(PolicySpec("css", {"n_probes": 10}), context)
            recordings = record_directions(
                testbed,
                conference_room(6.0),
                [-30.0, 15.0],
                [0.0],
                2,
                np.random.default_rng(13),
            )
            blocks = runner.plan_trials(
                policy, recordings, testbed.tx_sector_ids, np.random.default_rng(14)
            )
            batched = runner.execute(policy, blocks, reset="recording")
            scalar = runner.execute(
                self._ScalarOnly(policy), blocks, reset="recording"
            )
        assert [r.result for r in scalar] == [r.result for r in batched]
        assert [r.sweep_index for r in scalar] == [r.sweep_index for r in batched]


class TestRunInteractive:
    def test_matches_hierarchical_search_run(self):
        testbed = build_testbed()
        runner = ScenarioRunner()  # interactive path: no pool to manage
        policy = build_policy(
            PolicySpec("hierarchical", {"n_groups": 6}), runner.context(testbed)
        )
        search = HierarchicalSearch(testbed.pattern_table, n_groups=6)
        table = testbed.pattern_table

        def measure(sector_ids, rng):
            return [
                ProbeMeasurement(
                    s,
                    float(table.gain(s, -20.0, 0.0)),
                    float(table.gain(s, -20.0, 0.0)) - 71.5,
                )
                for s in sector_ids
            ]

        ours = runner.run_interactive(
            policy, testbed.tx_sector_ids, measure, np.random.default_rng(0)
        )
        legacy = search.run(measure, np.random.default_rng(0))
        assert ours.result.sector_id == legacy.result.sector_id
        assert ours.probes_used == legacy.probes_used
        assert ours.n_rounds == legacy.n_rounds
        assert ours.training_time_us == pytest.approx(legacy.training_time_us)


class TestManifest:
    def test_run_emits_a_complete_manifest(self, tmp_path):
        spec = scenario_spec("fig10")
        with ScenarioRunner() as runner:
            outcome = runner.run(spec)
        manifest = outcome.manifest
        assert manifest.scenario == "fig10"
        assert manifest.spec_digest == spec.digest()
        assert manifest.seed == spec.seed
        assert manifest.jobs == 1
        assert manifest.wall_time_s >= 0.0
        assert manifest.git_rev
        path = tmp_path / "manifest.json"
        manifest.save(path)
        data = json.loads(path.read_text())
        assert data["spec_digest"] == spec.digest()


class TestCorrelationWarningClean:
    def test_degenerate_patterns_raise_no_runtime_warning(self):
        """A zero-variance pattern column used to emit 'invalid value
        encountered in divide' from the unit-normalization; the math is
        well-defined (the column simply never wins), so the path must
        stay silent."""
        from repro.core.correlation import correlation_map

        probes = np.array([3.0, 1.0, 2.0])
        patterns = np.zeros((3, 4))
        patterns[:, 1] = [3.0, 1.0, 2.0]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            scores = correlation_map(probes, patterns)
        assert np.isfinite(scores[1])
