"""Phased-array substrate: geometry, weights, imperfections, codebooks."""

from .analysis import PatternMetrics, analyze_cut, codebook_coverage, coverage_fraction
from .array import PhasedArray
from .codebook import Codebook, RX_SECTOR_ID, Sector
from .design import DesignReport, coverage_curve, design_codebook
from .elements import (
    DEFAULT_CARRIER_HZ,
    SPEED_OF_LIGHT_M_S,
    ElementLayout,
    talon_layout,
    uniform_rectangular_layout,
    wavelength_m,
)
from .impairments import ChassisBlockage, HardwareImpairments
from .steering import steering_matrix, steering_vector
from .talon import (
    ELEVATED_SECTOR_IDS,
    MULTI_LOBE_SECTOR_IDS,
    STRONG_SECTOR_IDS,
    TALON_TX_SECTOR_IDS,
    WEAK_SECTOR_IDS,
    WIDE_SECTOR_IDS,
    fine_codebook,
    probing_sector_ids,
    talon_codebook,
)
from .weights import WeightVector, quantize_phase

__all__ = [
    "PatternMetrics",
    "analyze_cut",
    "codebook_coverage",
    "coverage_fraction",
    "PhasedArray",
    "Codebook",
    "DesignReport",
    "coverage_curve",
    "design_codebook",
    "RX_SECTOR_ID",
    "Sector",
    "DEFAULT_CARRIER_HZ",
    "SPEED_OF_LIGHT_M_S",
    "ElementLayout",
    "talon_layout",
    "uniform_rectangular_layout",
    "wavelength_m",
    "ChassisBlockage",
    "HardwareImpairments",
    "steering_matrix",
    "steering_vector",
    "ELEVATED_SECTOR_IDS",
    "MULTI_LOBE_SECTOR_IDS",
    "STRONG_SECTOR_IDS",
    "TALON_TX_SECTOR_IDS",
    "WEAK_SECTOR_IDS",
    "WIDE_SECTOR_IDS",
    "talon_codebook",
    "fine_codebook",
    "probing_sector_ids",
    "WeightVector",
    "quantize_phase",
]
