"""Scalar↔batched equivalence for the estimation engine (tier 1).

The batched kernels (`correlation_map_batch`, `estimate_batch`,
`select_batch`) promise **bit-for-bit** agreement with the scalar
reference path — not approximate agreement — because every experiment
was rewritten on top of them with pinned expected outputs.  These tests
drive both paths over hypothesis-generated ragged, NaN-ridden batches
in every fusion mode and correlation domain and assert exact equality,
plus the perf guards: the precomputed-matrix path must never transform
the pattern matrix again per estimate, and `repro-bench perf --check`
must fail on a latency regression.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.correlation as correlation
from repro.core.compressive import CompressiveSectorSelector
from repro.core.correlation import (
    correlation_map,
    correlation_map_batch,
    correlation_map_prepared,
    prepare_pattern_matrix,
)
from repro.core.estimator import _UNIT_CACHE_LIMIT, AngleEstimator
from repro.core.measurements import ProbeMeasurement
from repro.experiments.common import pack_probe_trials, random_probe_columns
from repro.geometry import AngularGrid
from repro.measurement import PatternTable

N_SECTORS = 6


def _small_table(seed: int = 7) -> PatternTable:
    grid = AngularGrid(np.linspace(-20.0, 20.0, 5), np.array([0.0, 10.0]))
    rng = np.random.default_rng(seed)
    return PatternTable(
        grid, {s: rng.uniform(-10.0, 12.0, grid.shape) for s in range(N_SECTORS)}
    )


TABLE = _small_table()

FUSIONS = ("product", "snr", "rssi")
DOMAINS = ("linear", "db")

# One estimator per (fusion, domain), shared across hypothesis examples
# (estimators are stateless; selectors are not and are built per example).
ESTIMATORS = {
    (fusion, domain): AngleEstimator(TABLE, domain=domain, fusion=fusion)
    for fusion in FUSIONS
    for domain in DOMAINS
}

# A probe value: ordinary, NaN (dropped by the scalar path) or inf.
probe_value = st.one_of(
    st.floats(min_value=-30.0, max_value=30.0),
    st.just(float("nan")),
    st.just(float("inf")),
)

# One padded slot: (sector, snr, rssi, slot-carries-a-report).
slot = st.tuples(
    st.integers(min_value=0, max_value=N_SECTORS - 1),
    probe_value,
    probe_value,
    st.booleans(),
)

# A ragged batch: trials share the padded width but not the valid count.
batch = st.integers(min_value=2, max_value=5).flatmap(
    lambda width: st.lists(
        st.lists(slot, min_size=width, max_size=width), min_size=1, max_size=4
    )
)


def _unpack(trials):
    ids = np.array([[s[0] for s in trial] for trial in trials])
    snr = np.array([[s[1] for s in trial] for trial in trials])
    rssi = np.array([[s[2] for s in trial] for trial in trials])
    mask = np.array([[s[3] for s in trial] for trial in trials])
    return ids, snr, rssi, mask


def _scalar_measurements(trial):
    return [
        ProbeMeasurement(sector_id=s[0], snr_db=s[1], rssi_dbm=s[2])
        for s in trial
        if s[3]
    ]


class TestCorrelationMapBatch:
    @pytest.mark.parametrize("domain", DOMAINS)
    @settings(max_examples=60, deadline=None)
    @given(batch=batch, data=st.data())
    def test_rows_match_reference_bitwise(self, domain, batch, data):
        ids, snr, _, mask = _unpack(batch)
        probes, valid = snr, mask
        patterns = TABLE.sample_matrix(TABLE.grid)[: probes.shape[1]]
        surfaces = correlation_map_batch(probes, valid, patterns, domain=domain)
        assert surfaces.shape == (probes.shape[0], patterns.shape[1])
        for row in range(probes.shape[0]):
            keep = valid[row]
            if not keep.any():
                assert np.isnan(surfaces[row]).all()
                continue
            expected = correlation_map(probes[row][keep], patterns[keep], domain=domain)
            assert np.array_equal(surfaces[row], expected, equal_nan=True)

    @pytest.mark.parametrize("domain", DOMAINS)
    def test_prepared_matches_unprepared(self, domain):
        rng = np.random.default_rng(3)
        patterns = TABLE.sample_matrix(TABLE.grid)
        probes = rng.uniform(-10.0, 10.0, (4, patterns.shape[0]))
        prepared = prepare_pattern_matrix(patterns, domain)
        plain = correlation_map_batch(probes, None, patterns, domain=domain)
        fast = correlation_map_batch(
            probes, None, prepared, domain=domain, prepared=True
        )
        assert np.array_equal(plain, fast)
        for row in range(probes.shape[0]):
            assert np.array_equal(
                plain[row], correlation_map_prepared(probes[row], prepared, domain)
            )

    def test_mask_shape_mismatch_rejected(self):
        patterns = TABLE.sample_matrix(TABLE.grid)[:3]
        with pytest.raises(ValueError, match="mask shape"):
            correlation_map_batch(np.zeros((2, 3)), np.ones((2, 4), bool), patterns)


class TestEstimateBatch:
    @pytest.mark.parametrize("fusion", FUSIONS)
    @pytest.mark.parametrize("domain", DOMAINS)
    @settings(max_examples=40, deadline=None)
    @given(batch=batch)
    def test_rows_match_scalar_bitwise(self, fusion, domain, batch):
        estimator = ESTIMATORS[(fusion, domain)]
        ids, snr, rssi, mask = _unpack(batch)
        estimates = estimator.estimate_batch(
            ids, snr_db=snr, rssi_dbm=rssi, mask=mask
        )
        assert len(estimates) == len(batch)
        for trial, batched in zip(batch, estimates):
            measurements = _scalar_measurements(trial)
            try:
                scalar = estimator.estimate(measurements)
            except ValueError:
                assert batched is None
                continue
            assert batched == scalar  # dataclass equality: exact floats

    def test_underfilled_row_is_none_not_error(self):
        estimator = ESTIMATORS[("product", "linear")]
        ids = np.array([[0, 1, 2], [0, 1, 2]])
        snr = np.array([[5.0, np.nan, np.nan], [5.0, 4.0, 3.0]])
        rssi = np.full((2, 3), -60.0)
        estimates = estimator.estimate_batch(ids, snr_db=snr, rssi_dbm=rssi)
        assert estimates[0] is None
        assert estimates[1] is not None

    def test_unknown_usable_sector_raises(self):
        estimator = ESTIMATORS[("snr", "linear")]
        ids = np.array([[0, 63]])
        with pytest.raises(KeyError, match="no measured pattern"):
            estimator.estimate_batch(ids, snr_db=np.array([[1.0, 2.0]]))

    def test_grid_index_matches_nearest_lookup(self):
        estimator = ESTIMATORS[("product", "linear")]
        measurements = [
            ProbeMeasurement(sector_id=s, snr_db=5.0 - s, rssi_dbm=-60.0 - s)
            for s in range(4)
        ]
        estimate = estimator.estimate(measurements)
        assert estimate.grid_index == estimator.search_grid.nearest_index(
            estimate.azimuth_deg, estimate.elevation_deg
        )


class TestSelectBatch:
    @settings(max_examples=40, deadline=None)
    @given(batch=batch)
    def test_sequence_matches_scalar_bitwise(self, batch):
        ids, snr, rssi, mask = _unpack(batch)
        scalar_selector = CompressiveSectorSelector(TABLE)
        batch_selector = CompressiveSectorSelector(TABLE)
        scalar_results = []
        scalar_error = None
        for trial in batch:
            try:
                scalar_results.append(
                    scalar_selector.select(_scalar_measurements(trial))
                )
            except ValueError:
                scalar_error = ValueError
                break
        if scalar_error is not None:
            with pytest.raises(ValueError):
                batch_selector.select_batch(ids, snr_db=snr, rssi_dbm=rssi, mask=mask)
            return
        results = batch_selector.select_batch(
            ids, snr_db=snr, rssi_dbm=rssi, mask=mask
        )
        assert results == scalar_results
        assert batch_selector.last_selection == scalar_selector.last_selection

    def test_reset_restores_initial_selection(self):
        selector = CompressiveSectorSelector(TABLE, initial_sector_id=3)
        selector.select([])  # fallback with nothing: keeps initial
        assert selector.last_selection == 3
        selector.select_batch(
            np.array([[1, 2, 3]]),
            snr_db=np.array([[1.0, 9.0, 2.0]]),
            rssi_dbm=np.array([[-60.0, -55.0, -58.0]]),
        )
        selector.reset()
        assert selector.last_selection == 3
        # The fallback-with-nothing result reflects the reset state.
        assert selector.select([]).sector_id == 3

    def test_fallback_tie_keeps_first_like_python_max(self):
        selector = CompressiveSectorSelector(TABLE, min_probes=4)
        results = selector.select_batch(
            np.array([[1, 2, 3]]),
            snr_db=np.array([[7.0, 7.0, 7.0]]),
            rssi_dbm=np.array([[-60.0, -60.0, -60.0]]),
        )
        assert results[0].fallback
        assert results[0].sector_id == 1


class TestPackProbeTrials:
    def test_padding_mask_and_order(self):
        trials = [
            [ProbeMeasurement(1, 5.0, -60.0), ProbeMeasurement(2, 4.0, -61.0)],
            [ProbeMeasurement(3, 3.0, -62.0)],
        ]
        ids, snr, rssi, mask = pack_probe_trials(trials)
        assert ids.shape == snr.shape == rssi.shape == mask.shape == (2, 2)
        assert ids[0].tolist() == [1, 2] and ids[1][0] == 3
        assert mask.tolist() == [[True, True], [True, False]]
        assert np.isnan(snr[1, 1]) and np.isnan(rssi[1, 1])
        # The tuple is in estimate_batch/select_batch argument order.
        estimator = ESTIMATORS[("product", "linear")]
        estimates = estimator.estimate_batch(ids, snr, rssi, mask)
        assert estimates[0] is not None and estimates[1] is None

    def test_random_probe_columns_matches_single_choice(self):
        draws = np.random.default_rng(11)
        reference = np.random.default_rng(11)
        columns = random_probe_columns(10, 4, draws)
        assert np.array_equal(
            columns, reference.choice(10, size=4, replace=False)
        )


class TestEstimatorHelpers:
    def test_has_sector(self):
        estimator = ESTIMATORS[("product", "linear")]
        assert estimator.has_sector(0)
        assert estimator.has_sector(N_SECTORS - 1)
        assert not estimator.has_sector(N_SECTORS)
        assert not estimator.has_sector(63)

    def test_unit_cache_hits_are_bitwise_and_bounded(self):
        estimator = AngleEstimator(TABLE)
        rows = [0, 2, 4]
        first = estimator._pattern_unit(rows)
        again = estimator._pattern_unit(np.array(rows, dtype=np.intp))
        assert again is first  # dict hit, list and array keys agree
        fresh = correlation.normalize_rows(estimator._prepared[rows].T).T
        assert np.allclose(first, fresh)
        for extra in range(_UNIT_CACHE_LIMIT + 10):
            estimator._pattern_unit([extra % N_SECTORS, (extra + 1) % N_SECTORS, extra % 2])
        assert len(estimator._unit_cache) <= _UNIT_CACHE_LIMIT


class TestPerfGuards:
    def test_estimate_never_transforms_pattern_matrix(self, monkeypatch):
        """The precomputed path pays the (M, K) transform at construction
        only; per-estimate calls may touch 1-D probe vectors at most."""
        estimator = AngleEstimator(TABLE)  # construction transforms (N, K)
        selector = CompressiveSectorSelector(TABLE)
        grid_points = TABLE.grid.n_points
        seen = []
        original = correlation.to_linear_power

        def counting(values_db):
            seen.append(np.asarray(values_db).shape)
            return original(values_db)

        monkeypatch.setattr(correlation, "to_linear_power", counting)
        measurements = [
            ProbeMeasurement(sector_id=s, snr_db=5.0 + s, rssi_dbm=-60.0 + s)
            for s in range(4)
        ]
        for _ in range(3):
            estimator.estimate(measurements)
            selector.select(measurements)
        assert seen, "the linear domain must still transform probe vectors"
        assert all(len(shape) == 1 for shape in seen)

        seen.clear()
        ids = np.array([[0, 1, 2, 3]] * 3)
        snr = np.full((3, 4), 5.0)
        rssi = np.full((3, 4), -60.0)
        estimator.estimate_batch(ids, snr_db=snr, rssi_dbm=rssi)
        # The batch path transforms padded (T, M) channels — never
        # anything as wide as the (·, K) pattern matrix.
        assert seen and all(shape[-1] != grid_points for shape in seen)

    def test_perf_check_exit_codes(self, tmp_path, monkeypatch):
        from repro import perf

        healthy = {name: 1.0 for name in perf._LATENCY_METRICS}
        trajectory = tmp_path / "bench.json"
        monkeypatch.setattr(perf, "measure_metrics", lambda repeats=20: dict(healthy))
        assert perf.run_perf(label="baseline", output=str(trajectory)) == 0
        assert trajectory.is_file()
        assert perf.run_perf(output=str(trajectory), check=True) == 0

        regressed = dict(healthy)
        regressed["select_scalar_ms_median"] = 2.5  # > 2x the baseline
        monkeypatch.setattr(
            perf, "measure_metrics", lambda repeats=20: dict(regressed)
        )
        assert perf.run_perf(output=str(trajectory), check=True) == 1

    def test_check_against_baseline_reports_lines(self):
        from repro import perf

        data = {
            "points": [
                {"label": "baseline", "metrics": {"select_scalar_ms_median": 1.0}}
            ]
        }
        assert perf.check_against_baseline(data, {"select_scalar_ms_median": 1.5}) == []
        failures = perf.check_against_baseline(
            data, {"select_scalar_ms_median": 2.1}
        )
        assert failures and "select_scalar_ms_median" in failures[0]
        assert perf.check_against_baseline({"points": []}, {}) != []
        # Metrics absent on either side are skipped, not failed.
        assert perf.check_against_baseline(data, {"other_metric": 9.0}) == []

    def test_supervision_overhead_gate_widens_by_observed_noise(self):
        from repro import perf

        data = {"points": [{"label": "baseline", "metrics": {}}]}
        # within the absolute budget: passes regardless of noise
        assert perf.check_against_baseline(
            data, {"runner_supervision_overhead_pct": 4.0}
        ) == []
        # over budget on a quiet machine: fails
        failures = perf.check_against_baseline(
            data,
            {
                "runner_supervision_overhead_pct": 7.0,
                "runner_supervision_noise_pct": 0.5,
            },
        )
        assert failures and "runner_supervision_overhead_pct" in failures[0]
        # the same overhead inside the measured jitter band: tolerated
        assert perf.check_against_baseline(
            data,
            {
                "runner_supervision_overhead_pct": 7.0,
                "runner_supervision_noise_pct": 6.0,
            },
        ) == []

    def test_parallel_ratio_gate_widens_by_observed_noise(self):
        from repro import perf

        data = {"points": [{"label": "baseline", "metrics": {}}]}
        # jobs=4 faster than serial: passes
        assert perf.check_against_baseline(
            data, {"scenario_jobs4_over_jobs1_ratio": 0.92}
        ) == []
        # slower than serial on a quiet machine: fails
        failures = perf.check_against_baseline(
            data,
            {
                "scenario_jobs4_over_jobs1_ratio": 1.15,
                "scenario_jobs_noise_pct": 1.0,
            },
        )
        assert failures and "scenario_jobs4_over_jobs1_ratio" in failures[0]
        # the same ratio inside the measured jitter band: tolerated
        assert perf.check_against_baseline(
            data,
            {
                "scenario_jobs4_over_jobs1_ratio": 1.15,
                "scenario_jobs_noise_pct": 20.0,
            },
        ) == []

    def test_environment_capture_and_mismatch_warnings(self):
        from repro import perf

        env = perf._environment()
        assert isinstance(env["cpu_count"], int)
        assert env["start_method"] in ("fork", "spawn", "forkserver")
        assert perf.environment_mismatches(env, env) == []
        # cpu_count stored as a string by pre-int points still matches.
        legacy = dict(env, cpu_count=str(env["cpu_count"]))
        del legacy["start_method"]  # older points predate the key
        assert perf.environment_mismatches(legacy, env) == []
        moved = dict(env, numpy="0.0.1")
        lines = perf.environment_mismatches(moved, env)
        assert len(lines) == 1 and "numpy" in lines[0]

    def test_environment_values_compare_numerically(self):
        # Captures changed type across trajectory history (cpu_count
        # was the string "1" before it became the int 1); numeric
        # values compare as numbers regardless of representation.
        from repro import perf

        assert perf._normalize_env_value("1") == perf._normalize_env_value(1)
        assert perf._normalize_env_value(1.0) == perf._normalize_env_value(1)
        assert perf._normalize_env_value(" 4 ") == perf._normalize_env_value(4)
        assert perf._normalize_env_value("fork") == "fork"
        assert perf._normalize_env_value(True) != perf._normalize_env_value(1)
        assert (
            perf.environment_mismatches(
                {"cpu_count": "1"}, {"cpu_count": 1}
            )
            == []
        )
        lines = perf.environment_mismatches({"cpu_count": "2"}, {"cpu_count": 1})
        assert len(lines) == 1 and "cpu_count" in lines[0]

    def test_probe_design_throughput_gate(self):
        from repro import perf

        data = {
            "points": [
                {"label": "baseline", "metrics": {}},
                {"label": "probe-designer", "metrics": {"probe_design_per_s": 400.0}},
            ]
        }
        # Throughput holding (or improving): passes.
        assert perf.check_against_baseline(
            data, {"probe_design_per_s": 410.0}
        ) == []
        # Collapsing below committed / REGRESSION_FACTOR: fails, and the
        # reference is the most recent point carrying the metric, not
        # the (pre-designer) baseline label.
        failures = perf.check_against_baseline(
            data, {"probe_design_per_s": 400.0 / perf.REGRESSION_FACTOR - 1.0}
        )
        assert failures and "probe_design_per_s" in failures[0]
        # A trajectory with no designer point yet gates nothing.
        assert perf.check_against_baseline(
            {"points": [{"label": "baseline", "metrics": {}}]},
            {"probe_design_per_s": 1.0},
        ) == []
