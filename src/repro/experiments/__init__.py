"""Evaluation experiments: one module per table/figure, plus ablations."""

from .ablations import (
    AblationResult,
    run_3d_ablation,
    run_adaptive_ablation,
    run_fusion_ablation,
    run_pattern_ablation,
    run_oob_prior_ablation,
    run_probe_set_ablation,
    run_random_beam_ablation,
    run_refinement_ablation,
)
from .blockage import BlockageConfig, BlockageResult, run_blockage_recovery
from .dense import (
    DenseConfig,
    DenseInterferenceResult,
    DenseResult,
    run_dense_deployment,
    run_dense_interference,
)
from .io import dump_result_json, load_result_json, result_to_dict
from .drift import DriftConfig, DriftResult, run_pattern_drift
from .fine import FineCodebookConfig, FineCodebookResult, run_fine_codebook
from .transfer import TransferConfig, TransferResult, run_pattern_transfer
from .common import (
    BoxStats,
    RecordedDirection,
    Testbed,
    build_testbed,
    random_subsweep,
    record_directions,
)
from .fig5 import Fig5Config, Fig5Result, SectorSummary, count_lobes, run_fig5
from .fig6 import Fig6Config, Fig6Result, run_fig6
from .fig7 import EstimationErrorSeries, Fig7Config, Fig7Result, run_fig7
from .fig8 import Fig8Config, Fig8Result, run_fig8, stability_of_selections
from .fig9 import Fig9Config, Fig9Result, run_fig9
from .fig10 import Fig10Config, Fig10Result, run_fig10
from .fig11 import Fig11Config, Fig11Result, run_fig11
from .summary import HeadlineNumbers, run_summary
from .table1 import Table1Config, Table1Result, run_table1

__all__ = [
    "AblationResult",
    "run_3d_ablation",
    "run_adaptive_ablation",
    "run_fusion_ablation",
    "run_pattern_ablation",
    "run_probe_set_ablation",
    "run_random_beam_ablation",
    "run_oob_prior_ablation",
    "run_refinement_ablation",
    "BlockageConfig",
    "BlockageResult",
    "run_blockage_recovery",
    "DenseConfig",
    "DenseResult",
    "run_dense_deployment",
    "DenseInterferenceResult",
    "run_dense_interference",
    "DriftConfig",
    "DriftResult",
    "run_pattern_drift",
    "FineCodebookConfig",
    "FineCodebookResult",
    "run_fine_codebook",
    "TransferConfig",
    "TransferResult",
    "run_pattern_transfer",
    "dump_result_json",
    "load_result_json",
    "result_to_dict",
    "BoxStats",
    "RecordedDirection",
    "Testbed",
    "build_testbed",
    "random_subsweep",
    "record_directions",
    "Fig5Config",
    "Fig5Result",
    "SectorSummary",
    "count_lobes",
    "run_fig5",
    "Fig6Config",
    "Fig6Result",
    "run_fig6",
    "EstimationErrorSeries",
    "Fig7Config",
    "Fig7Result",
    "run_fig7",
    "Fig8Config",
    "Fig8Result",
    "run_fig8",
    "stability_of_selections",
    "Fig9Config",
    "Fig9Result",
    "run_fig9",
    "Fig10Config",
    "Fig10Result",
    "run_fig10",
    "Fig11Config",
    "Fig11Result",
    "run_fig11",
    "HeadlineNumbers",
    "run_summary",
    "Table1Config",
    "Table1Result",
    "run_table1",
]
