"""Behavioural model of the QCA9500 FullMAC Wi-Fi chip.

The chip owns the antenna codebook, performs the *stock* sector
selection (argmax of the per-sweep SNR reports, paper Eq. 1) and hides
everything from the host — exactly like the real firmware.  Host-side
visibility and control only appear once the Nexmon-style patches from
:mod:`repro.firmware.patches` are installed:

* the signal-strength extraction patch copies every sweep report into
  a host-drainable ring buffer (§3.3);
* the sector-override patch adds a WMI-armed switch that overwrites
  the SSW feedback field with a host-chosen sector (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Type

import numpy as np

from ..channel.observation import MeasurementModel, SignalObservation
from ..phased_array.codebook import Codebook
from .memory import QCA9500MemoryMap
from .wmi import WmiCommand, WmiError, WmiResetSweepState

__all__ = ["SweepReport", "QCA9500", "DEFAULT_FIRMWARE_VERSION"]

#: The Acer TravelMate firmware the paper analyzed and patched.
DEFAULT_FIRMWARE_VERSION = "3.3.3.7759"

#: Sector the stock firmware falls back to before any sweep succeeded.
_DEFAULT_SECTOR = 1


@dataclass(frozen=True)
class SweepReport:
    """One measurement the ucode produced for a received SSW frame."""

    sector_id: int
    cdown: int
    snr_db: float
    rssi_dbm: float
    sweep_index: int


class QCA9500:
    """A simulated QCA9500 with patchable sweep handling."""

    def __init__(
        self,
        codebook: Codebook,
        measurement_model: Optional[MeasurementModel] = None,
        firmware_version: str = DEFAULT_FIRMWARE_VERSION,
    ):
        self.codebook = codebook
        self.measurement_model = (
            measurement_model if measurement_model is not None else MeasurementModel()
        )
        self.firmware_version = firmware_version
        self.memory = QCA9500MemoryMap()

        # Stock per-sweep selection state (firmware-internal).
        self._sweep_index = 0
        self._current_reports: List[SweepReport] = []
        self._last_selection: int = _DEFAULT_SECTOR

        # Extension points that patches may populate.
        self._frame_hooks: List[Callable[["QCA9500", SweepReport], None]] = []
        self._feedback_provider: Optional[Callable[["QCA9500"], Optional[int]]] = None
        self._wmi_handlers: Dict[Type[WmiCommand], Callable[["QCA9500", WmiCommand], object]] = {}

    # ------------------------------------------------------------------
    # Extension-point registration (used by the patch framework only).
    # ------------------------------------------------------------------

    def register_frame_hook(self, hook: Callable[["QCA9500", SweepReport], None]) -> None:
        self._frame_hooks.append(hook)

    def register_feedback_provider(
        self, provider: Callable[["QCA9500"], Optional[int]]
    ) -> None:
        if self._feedback_provider is not None:
            raise ValueError("a feedback provider is already installed")
        self._feedback_provider = provider

    def register_wmi_handler(
        self,
        command_type: Type[WmiCommand],
        handler: Callable[["QCA9500", WmiCommand], object],
    ) -> None:
        if command_type in self._wmi_handlers:
            raise ValueError(f"WMI handler for {command_type.__name__} already registered")
        self._wmi_handlers[command_type] = handler

    # ------------------------------------------------------------------
    # Sweep handling (what the ucode does).
    # ------------------------------------------------------------------

    @property
    def sweep_index(self) -> int:
        """Monotonic counter of sweeps seen since power-up."""
        return self._sweep_index

    def start_sweep(self) -> None:
        """Begin accumulating reports for a new incoming sweep."""
        self._sweep_index += 1
        self._current_reports = []

    def process_ssw_frame(
        self, sector_id: int, cdown: int, true_snr_db: float, rng: np.random.Generator
    ) -> Optional[SignalObservation]:
        """Receive one SSW frame through the measurement pipeline.

        Returns the firmware's observation, or ``None`` when the frame
        was missed or its report dropped (both happen on real
        hardware, see §5).
        """
        observation = self.measurement_model.observe(
            true_snr_db, self.noise_floor_dbm, rng
        )
        if observation is None:
            return None
        report = SweepReport(
            sector_id=sector_id,
            cdown=cdown,
            snr_db=observation.snr_db,
            rssi_dbm=observation.rssi_dbm,
            sweep_index=self._sweep_index,
        )
        self._current_reports.append(report)
        for hook in self._frame_hooks:
            hook(self, report)
        return observation

    @property
    def noise_floor_dbm(self) -> float:
        """Reference noise floor the firmware assumes for RSSI."""
        return -71.5

    def stock_best_sector(self) -> int:
        """The original firmware selection: argmax SNR (Eq. 1).

        Falls back to the previous selection when the sweep produced no
        usable report — the chip never signals "no sector" to the peer.
        """
        if self._current_reports:
            best = max(self._current_reports, key=lambda report: report.snr_db)
            self._last_selection = best.sector_id
        return self._last_selection

    def select_feedback_sector(self) -> int:
        """Sector ID placed into the SSW feedback field.

        With the override patch installed and armed, the host's custom
        sector wins; otherwise the stock argmax selection is used.
        """
        stock = self.stock_best_sector()
        if self._feedback_provider is not None:
            custom = self._feedback_provider(self)
            if custom is not None:
                return custom
        return stock

    def current_sweep_reports(self) -> List[SweepReport]:
        """Firmware-internal view of this sweep's reports."""
        return list(self._current_reports)

    # ------------------------------------------------------------------
    # WMI mailbox.
    # ------------------------------------------------------------------

    def handle_wmi(self, command: WmiCommand) -> object:
        """Dispatch a host WMI command.

        Stock firmware understands only :class:`WmiResetSweepState`;
        the custom commands become available when their patch installs
        a handler — sending them to an unpatched chip raises
        :class:`WmiError`, like the real firmware dropping unknown
        command IDs.
        """
        if isinstance(command, WmiResetSweepState):
            self._current_reports = []
            self._last_selection = _DEFAULT_SECTOR
            return None
        handler = self._wmi_handlers.get(type(command))
        if handler is None:
            raise WmiError(f"unknown WMI command {type(command).__name__}")
        return handler(self, command)
